"""The synchronous cycle-level network: routers, links, and NIs.

The network owns the global event wheel.  A cycle proceeds as:

1. deliver this cycle's events (flit arrivals, returning credits, ejection
   completions);
2. network interfaces put flits on their injection channels;
3. every router runs VC allocation, then switch allocation;
4. granted flits leave their buffers: ejected flits complete after the
   remaining pipeline latency, forwarded flits arrive downstream after
   ``pipeline_stages`` cycles, and credits are scheduled back upstream.

All latencies are derived from :class:`~repro.network.config.RouterConfig`;
the defaults give the paper's 3-cycle-per-hop pipeline.

Per-cycle cost is proportional to *activity*, not network size: the network
keeps a set of routers with pending VA/SA work and a set of NIs with queued
packets, and :meth:`Network.step` visits only those.  Routers are woken by
flit arrivals, returning credits, and new injections, and go back to sleep
when both their VA-pending and active-VC lists empty; since every sleeping
component is state-identical to an idle component the dense loop would have
scanned, gated stepping is byte-identical to :meth:`Network.step_dense`.
The event wheel is a dict-of-lists keyed by cycle plus a min-heap of the
distinct pending times, so :meth:`next_event_time` is O(1) and the engine
can fast-forward quiescent stretches with :meth:`skip_to`.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.energy.activity import ActivityCounters
from repro.topology import Topology, make_topology

from .buffer import VCState
from .config import NetworkConfig
from .flit import Flit, Packet
from .interface import NetworkInterface
from .router import OutputPort, Router

_ARRIVAL = 0
_CREDIT = 1
_EJECT = 2


class Network:
    """A complete on-chip network built from a :class:`NetworkConfig`."""

    def __init__(self, config: NetworkConfig, topology: Topology | None = None) -> None:
        self.config = config
        self.topology = topology or make_topology(config.topology, config.num_terminals)
        if self.topology.num_terminals != config.num_terminals:
            raise ValueError(
                f"topology has {self.topology.num_terminals} terminals, "
                f"config wants {config.num_terminals}"
            )
        rc = config.router
        # Builder seams: DomainNetwork overrides these to instantiate only
        # the routers/NIs its partition domain owns (``None`` holes keep
        # full-length id-indexed lists, so every id-based lookup works
        # unchanged).  The monolithic network builds everything.
        self.routers = self._build_routers(rc)
        #: Compact aliases skipping ``None`` holes — the per-cycle loops
        #: and occupancy scans iterate these, never the full lists.
        self._live_routers = [r for r in self.routers if r is not None]
        self._wire()
        self.interfaces = self._build_interfaces(rc)
        self._live_interfaces = [ni for ni in self.interfaces if ni is not None]
        for ni in self._live_interfaces:
            self.routers[ni.router_id].upstream[ni.local_port] = ni
        self.counters = ActivityCounters()
        # Flits carried per directed link, held as per-router arrays indexed
        # by output port (a plain list increment in the grant loop instead
        # of a tuple-keyed dict op); exposed as a dict via ``link_flits``.
        self._link_keys = [
            (spec.src_router, spec.src_port) for spec in self.topology.links()
        ]
        self._link_counts = [
            [0] * self.topology.radix for _ in range(self.topology.num_routers)
        ]
        self.cycle = 0
        # Per-hop latencies resolved once (attribute chains cost in the
        # per-cycle loop).
        self._pipe = rc.pipeline_stages
        self._credit_delay = rc.credit_delay
        self._events: dict[int, list[tuple]] = {}
        # Min-heap of the distinct cycle numbers present in _events.
        self._event_times: list[int] = []
        #: Routers with pending VA/SA work; only these are stepped.
        self._active_routers: set[int] = set()
        #: NIs with queued packets or an in-progress flit stream.
        self._active_nis: set[int] = set()
        #: Activity gating on/off.  Off restores the pre-gating dense scan
        #: (every router and NI visited every cycle) — results are
        #: byte-identical either way; only the wall clock differs.
        self.gating = True
        self._in_flight_flits = 0
        #: Optional observer with on_flit_ejected / on_packet_ejected hooks
        #: (set by the simulation engine).
        self.stats = None
        #: Optional :class:`repro.obs.trace.FlitTracer` (set via
        #: ``Observability.attach``); ``None`` keeps every hook a dead
        #: ``is not None`` branch.
        self.tracer = None

    def _build_routers(self, rc) -> list[Router | None]:
        """Instantiate the router list (overridable; id-indexed)."""
        return [Router(r, rc, self.topology) for r in range(self.topology.num_routers)]

    def _build_interfaces(self, rc) -> list[NetworkInterface | None]:
        """Instantiate the NI list (overridable; terminal-id-indexed)."""
        return [
            NetworkInterface(
                t,
                *self.topology.router_of(t),
                config=rc,
                policy=self.routers[self.topology.router_of(t)[0]].vc_policy,
                topology=self.topology,
            )
            for t in range(self.topology.num_terminals)
        ]

    def _wire_link(self, spec) -> None:
        """Wire one topology link's upstream credit path (overridable)."""
        src = self.routers[spec.src_router]
        self.routers[spec.dst_router].upstream[spec.dst_port] = src.outputs[
            spec.src_port
        ]

    def iter_routers(self) -> list[Router]:
        """The instantiated routers (domain networks skip unowned ids)."""
        return self._live_routers

    def iter_interfaces(self) -> list[NetworkInterface]:
        """The instantiated NIs (domain networks skip unowned terminals)."""
        return self._live_interfaces

    def _wire(self) -> None:
        topo = self.topology
        rc = self.config.router
        for router in self._live_routers:
            for port in range(topo.radix):
                if topo.is_local_port(port):
                    router.outputs[port] = OutputPort(
                        port,
                        is_ejection=True,
                        dest_router=-1,
                        dest_port=-1,
                        num_vcs=rc.num_vcs,
                        buffer_depth=rc.buffer_depth,
                        owner=router.rid,
                        terminal=topo.terminal_of(router.rid, port),
                    )
                    continue
                nb = topo.neighbor(router.rid, port)
                if nb is None:
                    continue  # mesh edge: port unused
                router.outputs[port] = OutputPort(
                    port,
                    is_ejection=False,
                    dest_router=nb[0],
                    dest_port=nb[1],
                    num_vcs=rc.num_vcs,
                    buffer_depth=rc.buffer_depth,
                    owner=router.rid,
                )
        for spec in topo.links():
            self._wire_link(spec)

    @property
    def link_flits(self) -> dict[tuple[int, int], int]:
        """Flits carried per directed link, keyed by (router, output port)."""
        counts = self._link_counts
        return {(r, p): counts[r][p] for r, p in self._link_keys}

    # --- event plumbing ---------------------------------------------------

    def _schedule(self, when: int, event: tuple) -> None:
        q = self._events.get(when)
        if q is None:
            self._events[when] = [event]
            heappush(self._event_times, when)
        else:
            q.append(event)

    def _wake_router(self, rid: int) -> None:
        """Add a router to the active set (idempotent; counts transitions)."""
        active = self._active_routers
        if rid not in active:
            active.add(rid)
            self.counters.router_wakeups += 1

    def _deliver(self, now: int) -> None:
        events = self._events.pop(now, None)
        if not events:
            return
        times = self._event_times
        if times and times[0] == now:
            heappop(times)
        routers = self.routers
        counters = self.counters
        active = self._active_routers
        stats = self.stats
        tracer = self.tracer
        writes = wakeups = ejected_flits = ejected_packets = 0
        for ev in events:
            kind = ev[0]
            if kind == _ARRIVAL:
                _, rid, port, vc, flit = ev
                if flit.is_head:
                    routers[rid].accept_flit(port, vc, flit)
                else:
                    # Body/tail flits join an already-allocated VC; credit
                    # flow control guarantees buffer space, so the push
                    # reduces to an append (accept_flit would do the same
                    # after re-checking depth and head-ness).
                    routers[rid].inputs[port][vc].queue.append(flit)
                if tracer is not None:
                    tracer.record(now, flit.packet.pid, flit.seq, rid, "arrive", vc)
                writes += 1
                if rid not in active:
                    active.add(rid)
                    wakeups += 1
            elif kind == _CREDIT:
                _, sink, vc, release = ev
                ovc = sink.out_vcs[vc]
                ovc.credits += 1
                if release:
                    ovc.allocated = False
                # The credit may unblock a credit-starved ACTIVE VC of the
                # router that owns the sink (NIs poll while they have work,
                # so only router-owned sinks need a wakeup).
                owner = sink.owner
                if owner >= 0 and owner not in active:
                    active.add(owner)
                    wakeups += 1
            else:  # _EJECT
                _, flit, terminal = ev
                ejected_flits += 1
                if tracer is not None:
                    # For inject/eject the "router" field carries the
                    # terminal id (the flit is at an NI, not a router).
                    tracer.record(
                        now, flit.packet.pid, flit.seq, terminal, "eject", 0
                    )
                if stats is not None:
                    stats.on_flit_ejected(terminal, now)
                if flit.is_tail:
                    packet = flit.packet
                    packet.ejected_cycle = now
                    ejected_packets += 1
                    if stats is not None:
                        stats.on_packet_ejected(packet, now)
        counters.buffer_writes += writes
        counters.router_wakeups += wakeups
        counters.flits_ejected += ejected_flits
        counters.packets_ejected += ejected_packets
        self._in_flight_flits -= ejected_flits

    def next_event_time(self) -> int | None:
        """Earliest cycle with a scheduled event, or ``None`` when empty."""
        times = self._event_times
        events = self._events
        while times and times[0] not in events:
            heappop(times)  # drop stale times defensively
        return times[0] if times else None

    # --- public API ---------------------------------------------------------

    def inject(self, packet: Packet) -> bool:
        """Queue a packet at its source NI; False when the queue is full."""
        if self.interfaces[packet.src].enqueue(packet):
            self._active_nis.add(packet.src)
            return True
        return False

    def step(self) -> None:
        """Advance the network by one cycle (activity-gated).

        Only active NIs and routers are visited; see the module docstring
        for the wake conditions and the sleep invariant.
        """
        if not self.gating:
            self.step_dense()
            return
        now = self.cycle
        tracer = self.tracer
        if tracer is not None:
            # Routers and NIs have no clock; the tracer carries it for them.
            tracer.cycle = now
        self._deliver(now)

        active_nis = self._active_nis
        if active_nis:
            interfaces = self.interfaces
            for t in sorted(active_nis):
                ni = interfaces[t]
                sent = ni.next_flit()
                if sent is not None:
                    vc, flit = sent
                    self._schedule(
                        now + 1, (_ARRIVAL, ni.router_id, ni.local_port, vc, flit)
                    )
                    self._in_flight_flits += 1
                if not (ni.queue or ni._current_flits):  # inlined has_work()
                    active_nis.discard(t)

        active_routers = self._active_routers
        if active_routers:
            routers = self.routers
            order = sorted(active_routers)
            for rid in order:
                router = routers[rid]
                if router._va_pending:
                    router.vc_allocate()
            for rid in order:
                router = routers[rid]
                grants = router.switch_allocate()
                if grants:
                    self._apply_grants(router, grants, now)
                if not router._sa_active and not router._va_pending:
                    active_routers.discard(rid)

        self.counters.cycles += 1
        self.cycle = now + 1

    def step_dense(self) -> None:
        """Advance one cycle visiting every router and NI (reference loop).

        This is the pre-gating implementation, kept as the equivalence
        baseline for tests and benchmarks.  It shares every state-changing
        helper with :meth:`step`, so the two only differ in which (no-op)
        components they visit.
        """
        now = self.cycle
        tracer = self.tracer
        if tracer is not None:
            tracer.cycle = now
        self._deliver(now)

        for ni in self._live_interfaces:
            sent = ni.next_flit()
            if sent is not None:
                vc, flit = sent
                self._schedule(now + 1, (_ARRIVAL, ni.router_id, ni.local_port, vc, flit))
                self._in_flight_flits += 1

        for router in self._live_routers:
            if router._va_pending:
                router.vc_allocate()
        for router in self._live_routers:
            grants = router.switch_allocate()
            if grants:
                self._apply_grants(router, grants, now)

        self.counters.cycles += 1
        self.cycle = now + 1

    def has_active_work(self) -> bool:
        """True when any router or NI would do work next cycle."""
        return bool(self._active_routers or self._active_nis)

    def skip_to(self, cycle: int) -> None:
        """Fast-forward the clock to ``cycle`` without simulating.

        Only valid when the caller has established quiescence: no active
        router or NI, and no event scheduled before ``cycle`` (the engine
        checks :meth:`has_active_work` and :meth:`next_event_time`).  The
        skipped cycles still count toward ``counters.cycles`` — and are
        tallied separately in ``counters.cycles_skipped`` — so results are
        identical to having stepped through them.
        """
        skipped = cycle - self.cycle
        if skipped <= 0:
            return
        self.counters.cycles += skipped
        self.counters.cycles_skipped += skipped
        self.cycle = cycle

    def _apply_grants(self, router: Router, grants, now: int) -> None:
        """Move every granted flit out of ``router``'s buffers.

        One call per router per cycle: event scheduling is inlined and the
        per-grant activity counters are accumulated locally and flushed
        once, which matters at ~1 grant per active router per cycle.
        """
        events = self._events
        times = self._event_times
        inputs = router.inputs
        outputs = router.outputs
        upstream = router.upstream
        link_counts = self._link_counts[router.rid]
        rid = router.rid
        # Every grant schedules its flit move at ``now + pipe`` and (links
        # and injection channels are always wired) a credit at ``now +
        # credit_delay``; resolve both queues once for the whole batch.
        move_when = now + self._pipe
        moveq = events.get(move_when)
        if moveq is None:
            moveq = events[move_when] = []
            heappush(times, move_when)
        credit_when = now + self._credit_delay
        creditq = events.get(credit_when)
        if creditq is None:
            creditq = events[credit_when] = []
            heappush(times, credit_when)
        tracer = self.tracer
        vc_group = None
        if tracer is not None:
            # Only IF/VIX-family allocators have virtual-input groups; other
            # schemes report vin 0 (one crossbar input per port).
            vc_group = getattr(router.allocator, "vc_group", None)
        links = 0
        for in_port, vc, out_port in grants:
            ivc = inputs[in_port][vc]
            flit = ivc.queue.popleft()
            if tracer is not None:
                tracer.record(
                    now,
                    flit.packet.pid,
                    flit.seq,
                    rid,
                    "sa",
                    vc,
                    vc_group(vc) if vc_group is not None else 0,
                )
            out = outputs[out_port]
            if out.is_ejection:
                # ST + LT of the final hop happen before the NI receives it.
                moveq.append((_EJECT, flit, out.terminal))
            else:
                ovc = out.out_vcs[ivc.out_vc]
                credits = ovc.credits
                if credits <= 0:
                    raise RuntimeError(
                        f"router {rid}: grant without downstream credit"
                    )
                ovc.credits = credits - 1
                links += 1
                link_counts[out_port] += 1
                if out.link is None:
                    moveq.append(
                        (_ARRIVAL, out.dest_router, out.dest_port, ivc.out_vc, flit)
                    )
                else:
                    # Boundary port: the inter-chip link carries the flit
                    # into the destination domain (credits already hold).
                    out.link.send_flit(now, ivc.out_vc, flit)
            tail = flit.is_tail
            up = upstream[in_port]
            if up is not None:
                if up.owner != -2:
                    creditq.append((_CREDIT, up, vc, tail))
                else:
                    # LinkIngress: the freed slot's credit crosses back to
                    # the source domain through the link.
                    up.send_credit(now, vc, tail)
            if tail:
                ivc.release()
        n = len(grants)
        counters = self.counters
        counters.buffer_reads += n
        counters.xbar_traversals += n
        counters.link_traversals += links

    def run(self, cycles: int) -> None:
        """Step the network ``cycles`` times."""
        for _ in range(cycles):
            self.step()

    # --- occupancy queries ---------------------------------------------------

    def buffered_flits(self) -> int:
        """Flits buffered in all routers right now."""
        return sum(r.buffered_flits() for r in self._live_routers)

    def outstanding_flits(self) -> int:
        """Flits anywhere between source NI queue and ejection.

        ``_in_flight_flits`` counts flits from injection-channel entry until
        ejection (buffered flits included), so it is disjoint from the NI
        queues.
        """
        pending = sum(ni.pending_flits() for ni in self._live_interfaces)
        return pending + self._in_flight_flits

    def idle(self) -> bool:
        """True when no flit is queued, buffered, or in flight."""
        return self.outstanding_flits() == 0 and not self._events

    # --- engine-neutral introspection ----------------------------------------
    # The partition engine and invariant checker talk to domains through
    # these methods so an array-backed domain (repro.sim.vec.domain) can
    # answer from its tensors while object domains answer from theirs.

    def counter_snapshot(self) -> dict:
        """Activity counters as a plain dict (overridable per engine)."""
        return self.counters.snapshot()

    def export_flow_state(self) -> dict:
        """Flow-control snapshot (see :mod:`repro.network.state`)."""
        from .state import export_flow_state

        return export_flow_state(self)

    def credit_of(self, rid: int, port: int, vc: int) -> int:
        """Credits on router ``rid``'s output ``port`` VC ``vc``."""
        return self.routers[rid].outputs[port].out_vcs[vc].credits

    def ni_credit_of(self, terminal: int, vc: int) -> int:
        """Credits on terminal ``terminal``'s injection-channel VC ``vc``."""
        return self.interfaces[terminal].out_vcs[vc].credits

    def occupancy_of(self, rid: int, port: int, vc: int) -> int:
        """Buffered flits in router ``rid``'s input ``port`` VC ``vc``."""
        return len(self.routers[rid].inputs[port][vc].queue)

    def pending_event_index(self) -> tuple[dict, dict]:
        """Pending wheel events by target, for the invariant checker.

        Returns ``(arrivals, credits)``: arrivals keyed ``(router, port,
        vc) -> count``; credits keyed structurally — ``(router, port,
        vc)`` for router output VCs, ``("ni", terminal, vc)`` for NI
        injection channels — so object and array domains index the same
        way.
        """
        arrivals: dict[tuple, int] = {}
        credits: dict[tuple, int] = {}
        for events in self._events.values():
            for ev in events:
                kind = ev[0]
                if kind == _ARRIVAL:
                    key = (ev[1], ev[2], ev[3])
                    arrivals[key] = arrivals.get(key, 0) + 1
                elif kind == _CREDIT:
                    sink = ev[1]
                    if sink.owner >= 0:
                        key = (sink.owner, sink.index, ev[2])
                    else:
                        key = ("ni", sink.terminal, ev[2])
                    credits[key] = credits.get(key, 0) + 1
        return arrivals, credits

    def channel_utilization(self) -> dict[tuple[int, int], float]:
        """Per-link utilization (flits carried / cycles simulated).

        Keys are ``(router, output port)``; a value of 1.0 means the link
        carried a flit every cycle.  Useful for spotting the saturated DOR
        channels that bound permutation-traffic throughput.
        """
        cycles = max(1, self.counters.cycles)
        return {link: count / cycles for link, count in self.link_flits.items()}

    def hottest_links(self, n: int = 5) -> list[tuple[tuple[int, int], float]]:
        """The ``n`` busiest links as ``((router, port), utilization)``."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        util = self.channel_utilization()
        return sorted(util.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


__all__ = ["Network", "VCState"]
