"""The synchronous cycle-level network: routers, links, and NIs.

The network owns the global event wheel.  A cycle proceeds as:

1. deliver this cycle's events (flit arrivals, returning credits, ejection
   completions);
2. network interfaces put flits on their injection channels;
3. every router runs VC allocation, then switch allocation;
4. granted flits leave their buffers: ejected flits complete after the
   remaining pipeline latency, forwarded flits arrive downstream after
   ``pipeline_stages`` cycles, and credits are scheduled back upstream.

All latencies are derived from :class:`~repro.network.config.RouterConfig`;
the defaults give the paper's 3-cycle-per-hop pipeline.
"""

from __future__ import annotations

from repro.energy.activity import ActivityCounters
from repro.topology import Topology, make_topology

from .buffer import VCState
from .config import NetworkConfig
from .flit import Flit, Packet
from .interface import NetworkInterface
from .router import OutputPort, Router

_ARRIVAL = 0
_CREDIT = 1
_EJECT = 2


class Network:
    """A complete on-chip network built from a :class:`NetworkConfig`."""

    def __init__(self, config: NetworkConfig, topology: Topology | None = None) -> None:
        self.config = config
        self.topology = topology or make_topology(config.topology, config.num_terminals)
        if self.topology.num_terminals != config.num_terminals:
            raise ValueError(
                f"topology has {self.topology.num_terminals} terminals, "
                f"config wants {config.num_terminals}"
            )
        rc = config.router
        self.routers = [
            Router(r, rc, self.topology) for r in range(self.topology.num_routers)
        ]
        self._wire()
        self.interfaces = [
            NetworkInterface(
                t,
                *self.topology.router_of(t),
                config=rc,
                policy=self.routers[self.topology.router_of(t)[0]].vc_policy,
                topology=self.topology,
            )
            for t in range(self.topology.num_terminals)
        ]
        for ni in self.interfaces:
            self.routers[ni.router_id].upstream[ni.local_port] = ni
        self.counters = ActivityCounters()
        #: Flits carried per directed link, keyed by (router, output port).
        self.link_flits: dict[tuple[int, int], int] = {
            (spec.src_router, spec.src_port): 0 for spec in self.topology.links()
        }
        self.cycle = 0
        self._events: dict[int, list[tuple]] = {}
        self._in_flight_flits = 0
        #: Optional observer with on_flit_ejected / on_packet_ejected hooks
        #: (set by the simulation engine).
        self.stats = None

    def _wire(self) -> None:
        topo = self.topology
        rc = self.config.router
        for router in self.routers:
            for port in range(topo.radix):
                if topo.is_local_port(port):
                    router.outputs[port] = OutputPort(
                        port,
                        is_ejection=True,
                        dest_router=-1,
                        dest_port=-1,
                        num_vcs=rc.num_vcs,
                        buffer_depth=rc.buffer_depth,
                    )
                    continue
                nb = topo.neighbor(router.rid, port)
                if nb is None:
                    continue  # mesh edge: port unused
                router.outputs[port] = OutputPort(
                    port,
                    is_ejection=False,
                    dest_router=nb[0],
                    dest_port=nb[1],
                    num_vcs=rc.num_vcs,
                    buffer_depth=rc.buffer_depth,
                )
        for spec in topo.links():
            src = self.routers[spec.src_router]
            self.routers[spec.dst_router].upstream[spec.dst_port] = src.outputs[
                spec.src_port
            ]

    # --- event plumbing ---------------------------------------------------

    def _schedule(self, when: int, event: tuple) -> None:
        self._events.setdefault(when, []).append(event)

    def _deliver(self, now: int) -> None:
        events = self._events.pop(now, None)
        if not events:
            return
        for ev in events:
            kind = ev[0]
            if kind == _ARRIVAL:
                _, rid, port, vc, flit = ev
                self.routers[rid].accept_flit(port, vc, flit)
                self.counters.buffer_writes += 1
            elif kind == _CREDIT:
                _, sink, vc, release = ev
                ovc = sink.out_vcs[vc]
                ovc.credits += 1
                if release:
                    ovc.allocated = False
            else:  # _EJECT
                _, flit, terminal = ev
                self._in_flight_flits -= 1
                self.counters.flits_ejected += 1
                if self.stats is not None:
                    self.stats.on_flit_ejected(terminal, now)
                if flit.is_tail:
                    packet = flit.packet
                    packet.ejected_cycle = now
                    self.counters.packets_ejected += 1
                    if self.stats is not None:
                        self.stats.on_packet_ejected(packet, now)

    # --- public API ---------------------------------------------------------

    def inject(self, packet: Packet) -> bool:
        """Queue a packet at its source NI; False when the queue is full."""
        return self.interfaces[packet.src].enqueue(packet)

    def step(self) -> None:
        """Advance the network by one cycle."""
        now = self.cycle
        pipe = self.config.router.pipeline_stages
        self._deliver(now)

        for ni in self.interfaces:
            sent = ni.next_flit()
            if sent is not None:
                vc, flit = sent
                self._schedule(now + 1, (_ARRIVAL, ni.router_id, ni.local_port, vc, flit))
                self._in_flight_flits += 1

        for router in self.routers:
            if router._va_pending:
                router.vc_allocate()
        for router in self.routers:
            grants = router.switch_allocate()
            for g in grants:
                self._apply_grant(router, g, now, pipe)

        self.counters.cycles += 1
        self.cycle = now + 1

    def _apply_grant(self, router: Router, grant, now: int, pipe: int) -> None:
        ivc = router.inputs[grant.in_port][grant.vc]
        flit = ivc.pop()
        self.counters.buffer_reads += 1
        self.counters.xbar_traversals += 1
        out = router.outputs[grant.out_port]
        assert out is not None
        if out.is_ejection:
            terminal = self.topology.terminal_of(router.rid, grant.out_port)
            # ST + LT of the final hop happen before the NI receives it.
            self._schedule(now + pipe, (_EJECT, flit, terminal))
        else:
            ovc = out.out_vcs[ivc.out_vc]
            if ovc.credits <= 0:
                raise RuntimeError(
                    f"router {router.rid}: grant without downstream credit"
                )
            ovc.credits -= 1
            self.counters.link_traversals += 1
            self.link_flits[(router.rid, grant.out_port)] += 1
            self._schedule(
                now + pipe,
                (_ARRIVAL, out.dest_router, out.dest_port, ivc.out_vc, flit),
            )
        upstream = router.upstream[grant.in_port]
        if upstream is not None:
            self._schedule(
                now + self.config.router.credit_delay,
                (_CREDIT, upstream, grant.vc, flit.is_tail),
            )
        if flit.is_tail:
            ivc.release()

    def run(self, cycles: int) -> None:
        """Step the network ``cycles`` times."""
        for _ in range(cycles):
            self.step()

    # --- occupancy queries ---------------------------------------------------

    def buffered_flits(self) -> int:
        """Flits buffered in all routers right now."""
        return sum(r.buffered_flits() for r in self.routers)

    def outstanding_flits(self) -> int:
        """Flits anywhere between source NI queue and ejection.

        ``_in_flight_flits`` counts flits from injection-channel entry until
        ejection (buffered flits included), so it is disjoint from the NI
        queues.
        """
        pending = sum(ni.pending_flits() for ni in self.interfaces)
        return pending + self._in_flight_flits

    def idle(self) -> bool:
        """True when no flit is queued, buffered, or in flight."""
        return self.outstanding_flits() == 0 and not self._events

    def channel_utilization(self) -> dict[tuple[int, int], float]:
        """Per-link utilization (flits carried / cycles simulated).

        Keys are ``(router, output port)``; a value of 1.0 means the link
        carried a flit every cycle.  Useful for spotting the saturated DOR
        channels that bound permutation-traffic throughput.
        """
        cycles = max(1, self.counters.cycles)
        return {link: count / cycles for link, count in self.link_flits.items()}

    def hottest_links(self, n: int = 5) -> list[tuple[tuple[int, int], float]]:
        """The ``n`` busiest links as ``((router, port), utilization)``."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        util = self.channel_utilization()
        return sorted(util.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


__all__ = ["Network", "VCState"]
