"""NoC substrate: flits, buffers, routers, links, and networks."""

from .buffer import InputVC, OutVC, VCState
from .config import NetworkConfig, RouterConfig, paper_config
from .flit import Flit, FlitType, Packet
from .interface import NetworkInterface
from .network import Network
from .router import OutputPort, Router
from .state import export_flow_state, import_flow_state

__all__ = [
    "Flit",
    "export_flow_state",
    "import_flow_state",
    "FlitType",
    "InputVC",
    "Network",
    "NetworkConfig",
    "NetworkInterface",
    "OutVC",
    "OutputPort",
    "Packet",
    "Router",
    "RouterConfig",
    "VCState",
    "paper_config",
]
