"""NoC substrate: flits, buffers, routers, links, and networks."""

from .buffer import InputVC, OutVC, VCState
from .config import NetworkConfig, RouterConfig, paper_config
from .flit import Flit, FlitType, Packet
from .domain import DomainNetwork
from .interface import NetworkInterface
from .links import InterChipLink, LinkConfig, LinkIngress, PartitionConfig
from .network import Network
from .router import OutputPort, Router
from .state import export_flow_state, import_flow_state

__all__ = [
    "DomainNetwork",
    "Flit",
    "export_flow_state",
    "import_flow_state",
    "FlitType",
    "InputVC",
    "InterChipLink",
    "LinkConfig",
    "LinkIngress",
    "Network",
    "PartitionConfig",
    "NetworkConfig",
    "NetworkInterface",
    "OutVC",
    "OutputPort",
    "Packet",
    "Router",
    "RouterConfig",
    "VCState",
    "paper_config",
]
