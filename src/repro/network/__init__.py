"""NoC substrate: flits, buffers, routers, links, and networks."""

from .buffer import InputVC, OutVC, VCState
from .config import NetworkConfig, RouterConfig, paper_config
from .flit import Flit, FlitType, Packet
from .interface import NetworkInterface
from .network import Network
from .router import OutputPort, Router

__all__ = [
    "Flit",
    "FlitType",
    "InputVC",
    "Network",
    "NetworkConfig",
    "NetworkInterface",
    "OutVC",
    "OutputPort",
    "Packet",
    "Router",
    "RouterConfig",
    "VCState",
    "paper_config",
]
