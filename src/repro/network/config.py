"""Configuration dataclasses for routers and networks.

Defaults follow the paper's methodology (Section 3): 6 VCs per port, 5-flit
buffers per VC, 128-bit datapath, 3-stage router pipeline, dimension-order
routing, wormhole switching with credit-based VC flow control.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.registry import allocators as _allocators


@dataclass(frozen=True)
class RouterConfig:
    """Per-router microarchitecture configuration."""

    #: Virtual channels per input port (paper default: 6).
    num_vcs: int = 6
    #: Flit buffers per VC (paper default: 5).
    buffer_depth: int = 5
    #: Switch allocation scheme (any name or alias registered in
    #: :data:`repro.registry.allocators`).
    allocator: str = "input_first"
    #: Crossbar virtual inputs per port; only meaningful with the "vix"
    #: allocator (2 = the paper's 1:2 VIX).
    virtual_inputs: int = 2
    #: Output-VC assignment policy ("max_credit" or "vix_dimension").
    vc_policy: str = "max_credit"
    #: Cycles for a credit to travel back upstream (>= 1: a credit cannot
    #: arrive within the cycle that generated it).
    credit_delay: int = 2
    #: Per-hop pipeline latency in cycles: VA/SA + switch traversal + link
    #: traversal (the paper's Fig. 6(b) 3-stage pipeline).
    pipeline_stages: int = 3

    def __post_init__(self) -> None:
        if self.num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.buffer_depth < 1:
            raise ValueError(f"buffer_depth must be >= 1, got {self.buffer_depth}")
        if self.virtual_inputs < 1:
            raise ValueError(
                f"virtual_inputs must be >= 1, got {self.virtual_inputs}"
            )
        if self.credit_delay < 1:
            raise ValueError(f"credit_delay must be >= 1, got {self.credit_delay}")
        if self.pipeline_stages < 1:
            raise ValueError(
                f"pipeline_stages must be >= 1, got {self.pipeline_stages}"
            )

    @property
    def effective_virtual_inputs(self) -> int:
        """Crossbar inputs per port after resolving the allocator choice.

        Resolved through the scheme registry's capability flags: only
        schemes flagged as enlarging the crossbar present more than one
        input per port; every other scheme drives a conventional ``P x P``
        crossbar.
        """
        return _allocators.get(self.allocator).effective_virtual_inputs(
            self.virtual_inputs, self.num_vcs
        )


@dataclass(frozen=True)
class NetworkConfig:
    """Whole-network configuration."""

    #: Topology name: "mesh", "cmesh", or "fbfly".
    topology: str = "mesh"
    #: Number of terminals (cores); the paper studies 64-node networks.
    num_terminals: int = 64
    router: RouterConfig = field(default_factory=RouterConfig)
    #: Router datapath / link width in bits (constant across topologies).
    flit_width_bits: int = 128
    #: Packet size in flits (512-bit packets = 4 flits by default).
    packet_length: int = 4

    def __post_init__(self) -> None:
        if self.num_terminals < 2:
            raise ValueError(
                f"num_terminals must be >= 2, got {self.num_terminals}"
            )
        if self.flit_width_bits < 1:
            raise ValueError(
                f"flit_width_bits must be >= 1, got {self.flit_width_bits}"
            )
        if self.packet_length < 1:
            raise ValueError(f"packet_length must be >= 1, got {self.packet_length}")

    def with_router(self, **changes: object) -> "NetworkConfig":
        """Return a copy with router-level fields replaced."""
        return replace(self, router=replace(self.router, **changes))


def paper_config(
    allocator: str = "input_first",
    *,
    topology: str = "mesh",
    num_vcs: int = 6,
    virtual_inputs: int = 2,
    packet_length: int = 4,
) -> NetworkConfig:
    """Convenience constructor for the paper's evaluation configurations.

    VIX configurations automatically enable the Section 2.3 dimension-aware
    VC assignment policy (keyed off the registry's enlarged-crossbar flag).
    """
    info = _allocators.get(allocator)
    key = info.name
    vc_policy = "vix_dimension" if info.enlarges_crossbar else "max_credit"
    return NetworkConfig(
        topology=topology,
        num_terminals=64,
        router=RouterConfig(
            num_vcs=num_vcs,
            buffer_depth=5,
            allocator=key,
            virtual_inputs=virtual_inputs,
            vc_policy=vc_policy,
        ),
        packet_length=packet_length,
    )
