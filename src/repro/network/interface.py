"""Network interface (NI): injection source queue and ejection sink.

The injection side behaves exactly like an upstream router output port for
the terminal's local input port: it tracks downstream credits per VC,
performs VC allocation for new packets (with the same policy the routers
use, so the Section 2.3 dimension-aware assignment also steers injected
packets), and pushes at most one flit per cycle onto the injection channel.
"""

from __future__ import annotations

from collections import deque

from repro.core.vc_policy import VCSelectionPolicy
from repro.topology.base import Topology

from .buffer import OutVC
from .config import RouterConfig
from .flit import Flit, Packet


class NetworkInterface:
    """Per-terminal injection/ejection endpoint."""

    #: Credit-sink owner id for the network's wake bookkeeping.  NIs poll
    #: while they have work queued, so a returning credit never needs to
    #: wake anything (-1 = no wake target).
    owner = -1

    __slots__ = (
        "terminal",
        "router_id",
        "local_port",
        "out_vcs",
        "queue",
        "max_queue",
        "_current_flits",
        "_current_vc",
        "_topology",
        "_policy",
        "_num_vcs",
        "_virtual_inputs",
        "_direction_cache",
        "packets_dropped",
        "tracer",
    )

    def __init__(
        self,
        terminal: int,
        router_id: int,
        local_port: int,
        config: RouterConfig,
        policy: VCSelectionPolicy,
        topology: Topology,
        max_queue: int = 64,
    ) -> None:
        self.terminal = terminal
        self.router_id = router_id
        self.local_port = local_port
        self.out_vcs = [OutVC(config.buffer_depth) for _ in range(config.num_vcs)]
        self.queue: deque[Packet] = deque()
        self.max_queue = max_queue
        self._current_flits: deque[Flit] = deque()
        self._current_vc = -1
        self._topology = topology
        self._policy = policy
        self._num_vcs = config.num_vcs
        self._virtual_inputs = config.effective_virtual_inputs
        # First-hop direction class per destination, memoized: routing is a
        # pure function of (router, dst) so each entry is computed once.
        self._direction_cache: dict[int, int | None] = {}
        self.packets_dropped = 0
        #: Optional FlitTracer (set via ``Observability.attach``); records
        #: injection-channel departures.
        self.tracer = None

    @property
    def queue_length(self) -> int:
        """Packets waiting in the source queue (including the one in flight)."""
        return len(self.queue) + (1 if self._current_flits else 0)

    def enqueue(self, packet: Packet) -> bool:
        """Add a packet to the source queue; False when the queue is full.

        A full queue models a saturated source (open-loop injection with a
        bounded queue); the drop is counted for diagnostics.
        """
        if len(self.queue) >= self.max_queue:
            self.packets_dropped += 1
            return False
        self.queue.append(packet)
        return True

    def next_flit(self) -> tuple[int, Flit] | None:
        """Flit to put on the injection channel this cycle, with its VC.

        Performs VC allocation for a new packet when the channel is free and
        consumes one downstream credit.  Returns ``None`` when there is
        nothing to send or no credit is available.
        """
        if not self._current_flits and self.queue:
            candidates = [
                i
                for i, ovc in enumerate(self.out_vcs)
                if not ovc.allocated and ovc.credits > 0
            ]
            if candidates:
                packet = self.queue[0]
                if len(candidates) == 1:
                    # Every policy returns the lone candidate, so skip the
                    # first-hop classification and the policy call.
                    vc = candidates[0]
                else:
                    # The "downstream" router of the injection channel is the
                    # local router itself; classify the packet's first hop.
                    dst = packet.dst
                    cache = self._direction_cache
                    if dst in cache:
                        direction = cache[dst]
                    else:
                        first_port = self._topology.route(self.router_id, dst)
                        direction = self._topology.port_direction_class(first_port)
                        cache[dst] = direction
                    credits = [ovc.credits for ovc in self.out_vcs]
                    vc = self._policy.select(
                        candidates,
                        credits,
                        num_vcs=self._num_vcs,
                        virtual_inputs=self._virtual_inputs,
                        downstream_direction=direction,
                    )
                self.out_vcs[vc].allocated = True
                self._current_vc = vc
                self._current_flits.extend(packet.make_flits())
                self.queue.popleft()
        if not self._current_flits:
            return None
        ovc = self.out_vcs[self._current_vc]
        if ovc.credits <= 0:
            return None
        ovc.credits -= 1
        flit = self._current_flits.popleft()
        tracer = self.tracer
        if tracer is not None:
            # The "router" field carries the terminal id for inject events.
            tracer.record(
                tracer.cycle,
                flit.packet.pid,
                flit.seq,
                self.terminal,
                "inject",
                self._current_vc,
            )
        return self._current_vc, flit

    def has_work(self) -> bool:
        """True while a packet is queued or a flit stream is in progress.

        This is the NI's activity condition: while it holds, the network
        polls :meth:`next_flit` every cycle (it may be credit-blocked); once
        it clears, the NI sleeps until the next :meth:`enqueue`.
        """
        return bool(self.queue or self._current_flits)

    def pending_flits(self) -> int:
        """Flits not yet handed to the network (queued packets included)."""
        queued = sum(p.num_flits for p in self.queue)
        return queued + len(self._current_flits)
