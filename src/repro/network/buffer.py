"""Virtual-channel buffer state: input VCs and output-side credit tracking.

Flow control follows the paper's methodology: wormhole switching with
credit-based virtual-channel flow control, atomic VC allocation (one packet
owns an input VC from its head's VC allocation until its tail departs).
"""

from __future__ import annotations

from collections import deque
from enum import IntEnum

from .flit import Flit


class VCState(IntEnum):
    """Input-VC state machine."""

    #: No packet owns this VC.
    IDLE = 0
    #: Head flit arrived and was routed; waiting for an output VC (VA).
    VA_WAIT = 1
    #: Output VC held; flits compete in switch allocation.
    ACTIVE = 2


class InputVC:
    """One input virtual channel of a router port.

    The buffer holds the flits of at most one packet at a time (atomic VC
    allocation).  ``out_port`` and ``out_vc`` are per-packet routing state
    filled in by lookahead routing and VC allocation.
    """

    __slots__ = (
        "port",
        "index",
        "depth",
        "queue",
        "state",
        "out_port",
        "out_vc",
        "src",
        "dst",
        "in_sa",
    )

    def __init__(self, port: int, index: int, depth: int) -> None:
        self.port = port
        self.index = index
        self.depth = depth
        self.queue: deque[Flit] = deque()
        self.state = VCState.IDLE
        self.out_port = -1
        self.out_vc = -1
        self.src = -1
        self.dst = -1
        #: Membership flag for the owning router's active-VC list (kept by
        #: the router; prevents duplicate entries when a VC is released and
        #: re-activated between two switch-allocation compactions).
        self.in_sa = False

    @property
    def occupancy(self) -> int:
        """Flits currently buffered."""
        return len(self.queue)

    def push(self, flit: Flit) -> None:
        """Buffer an arriving flit (caller guarantees credit-level space)."""
        if len(self.queue) >= self.depth:
            raise OverflowError(
                f"VC ({self.port}, {self.index}) overflow: credit protocol violated"
            )
        self.queue.append(flit)

    def pop(self) -> Flit:
        """Remove and return the head-of-line flit."""
        return self.queue.popleft()

    def head(self) -> Flit | None:
        """Head-of-line flit, or ``None`` when empty."""
        return self.queue[0] if self.queue else None

    def release(self) -> None:
        """Return to IDLE after the packet's tail departs."""
        if self.queue:
            raise RuntimeError(
                f"VC ({self.port}, {self.index}) released with {len(self.queue)} "
                "flits buffered — atomic VC allocation violated"
            )
        self.state = VCState.IDLE
        self.out_port = -1
        self.out_vc = -1
        self.src = -1
        self.dst = -1


class OutVC:
    """Upstream-side state of one downstream input VC.

    ``credits`` counts free flit slots in the downstream buffer;
    ``allocated`` marks the VC as owned by an in-flight packet (set at VC
    allocation, cleared when the tail's credit returns).
    """

    __slots__ = ("credits", "allocated")

    def __init__(self, depth: int) -> None:
        self.credits = depth
        self.allocated = False

    def __repr__(self) -> str:
        return f"OutVC(credits={self.credits}, allocated={self.allocated})"
