"""Flow-control state snapshots, shared by the object and array engines.

:func:`export_flow_state` captures the *grant-relevant* dynamic state of a
network — downstream credit counts, output-VC allocation flags, VC- and
switch-allocator round-robin pointers, NI injection-channel credit state —
as plain JSON-able data, and :func:`import_flow_state` restores it onto an
object network.

This is deliberately **not** a full checkpoint: flits and packets in
flight stay with their owning engine (resumable execution is the sweep
journal's job, see :mod:`repro.parallel`).  The snapshot exists for three
consumers:

* the **engine drift guard** — :meth:`repro.sim.vec.state.SoAState.export_flow_state`
  emits the same schema from its tensors, so a test can assert the object
  and vectorized engines agree on every pointer and credit after identical
  runs (byte-identical results could in principle hide compensating
  state errors; the state comparison cannot);
* the **obs layer** — a dump of where credits/allocations sit is the
  natural debugging artifact for allocator work;
* **tests** — seeding a mid-traffic flow-control state without replaying
  the traffic that produced it.

Schema (``version`` 1)::

    {
      "version": 1,
      "cycle": int,
      "routers": [            # one entry per router id
        {
          "credits":   [[int per VC] | None per port],   # None: ejection/dead
          "allocated": [[bool per VC] | None per port],
          "va_pointers": [int per output port],
          "sa_pointers": allocator.export_pointers() | None,
        }, ...
      ],
      "interfaces": [          # one entry per terminal
        {"credits": [int per VC], "allocated": [bool per VC]}, ...
      ],
    }
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .network import Network

#: Schema version of the snapshot dicts produced here.
FLOW_STATE_VERSION = 1


def export_flow_state(network: "Network") -> dict:
    """Snapshot the network's flow-control state as plain JSON-able data."""
    routers = []
    for router in network.routers:
        if router is None:
            # Partition-domain hole: the router lives in another domain.
            routers.append(None)
            continue
        credits: list[list[int] | None] = []
        allocated: list[list[bool] | None] = []
        for out in router.outputs:
            if out is None or out.is_ejection:
                # Ejection ports sink unconditionally (no credit state);
                # dead-edge ports are never wired.
                credits.append(None)
                allocated.append(None)
            else:
                credits.append([ovc.credits for ovc in out.out_vcs])
                allocated.append([ovc.allocated for ovc in out.out_vcs])
        allocator = router.allocator
        routers.append(
            {
                "credits": credits,
                "allocated": allocated,
                "va_pointers": [arb.pointer for arb in router._va_arbiters],
                "sa_pointers": (
                    allocator.export_pointers()
                    if hasattr(allocator, "export_pointers")
                    else None
                ),
            }
        )
    interfaces = [
        None
        if ni is None
        else {
            "credits": [ovc.credits for ovc in ni.out_vcs],
            "allocated": [ovc.allocated for ovc in ni.out_vcs],
        }
        for ni in network.interfaces
    ]
    return {
        "version": FLOW_STATE_VERSION,
        "cycle": network.cycle,
        "routers": routers,
        "interfaces": interfaces,
    }


def import_flow_state(network: "Network", state: dict) -> None:
    """Restore a snapshot produced by :func:`export_flow_state`.

    Credits, allocation flags, and arbiter pointers are written back onto
    the object network; ``cycle`` is restored too.  Shape mismatches (a
    snapshot from a differently configured network) raise ``ValueError``.
    """
    version = state.get("version")
    if version != FLOW_STATE_VERSION:
        raise ValueError(
            f"unsupported flow-state version {version!r} "
            f"(expected {FLOW_STATE_VERSION})"
        )
    if len(state["routers"]) != len(network.routers):
        raise ValueError(
            f"snapshot has {len(state['routers'])} routers, "
            f"network has {len(network.routers)}"
        )
    if len(state["interfaces"]) != len(network.interfaces):
        raise ValueError(
            f"snapshot has {len(state['interfaces'])} interfaces, "
            f"network has {len(network.interfaces)}"
        )
    for router, rstate in zip(network.routers, state["routers"]):
        if router is None or rstate is None:
            continue
        for out, creds, alloc in zip(
            router.outputs, rstate["credits"], rstate["allocated"]
        ):
            if out is None or out.is_ejection:
                continue
            if creds is None or len(creds) != len(out.out_vcs):
                raise ValueError(
                    f"router {router.rid}: credit row does not match "
                    f"{len(out.out_vcs)} output VCs"
                )
            for ovc, c, a in zip(out.out_vcs, creds, alloc):
                ovc.credits = c
                ovc.allocated = a
        for arb, pointer in zip(router._va_arbiters, rstate["va_pointers"]):
            arb._pointer = pointer % arb.num_requesters
        sa = rstate["sa_pointers"]
        if sa is not None and hasattr(router.allocator, "import_pointers"):
            router.allocator.import_pointers(sa)
    for ni, nstate in zip(network.interfaces, state["interfaces"]):
        if ni is None or nstate is None:
            continue
        for ovc, c, a in zip(ni.out_vcs, nstate["credits"], nstate["allocated"]):
            ovc.credits = c
            ovc.allocated = a
    network.cycle = state["cycle"]
