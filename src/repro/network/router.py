"""Cycle-level router with the paper's 3-stage pipeline (Fig. 6(b)).

Per cycle a router performs, in order:

1. **VC allocation (VA).**  Input VCs whose head flit has been routed
   (lookahead) compete for a free VC at the downstream router, chosen by the
   configured :class:`~repro.core.vc_policy.VCSelectionPolicy`.
2. **Switch allocation (SA).**  Every buffered VC with an output VC and a
   downstream credit requests its output port; the configured allocator
   (IF / WF / AP / PC / VIX) produces this cycle's crossbar grants.

Switch traversal and link traversal are modelled as fixed latency applied by
the :class:`~repro.network.network.Network` when it moves granted flits, so
a hop costs ``pipeline_stages`` cycles end to end.
"""

from __future__ import annotations

from repro.core import RequestMatrix, RoundRobinArbiter
from repro.registry import allocators as _allocators, vc_policies as _vc_policies
from repro.core.requests import Grant
from repro.topology.base import Topology

from .buffer import InputVC, OutVC, VCState
from .config import RouterConfig

#: Cache-miss sentinel distinct from a legitimate ``None`` direction.
_MISS = object()


class OutputPort:
    """One router output port and its downstream credit state."""

    __slots__ = (
        "index",
        "is_ejection",
        "dest_router",
        "dest_port",
        "out_vcs",
        "owner",
        "terminal",
        "link",
    )

    def __init__(
        self,
        index: int,
        *,
        is_ejection: bool,
        dest_router: int,
        dest_port: int,
        num_vcs: int,
        buffer_depth: int,
        owner: int = -1,
        terminal: int = -1,
    ) -> None:
        self.index = index
        self.is_ejection = is_ejection
        self.dest_router = dest_router
        self.dest_port = dest_port
        #: Router that owns this port (wakes on credit return), -1 if unwired.
        self.owner = owner
        #: Ejecting terminal for ejection ports (resolved once at wiring
        #: time so the hot loop never calls ``terminal_of``), else -1.
        self.terminal = terminal
        #: Inter-chip link carrying this port's flits when the downstream
        #: router lives in another simulation domain; ``None`` on-chip.
        self.link = None
        # Ejection ports sink flits directly (the NI always accepts), so they
        # carry no credit state.
        self.out_vcs: list[OutVC] = (
            [] if is_ejection else [OutVC(buffer_depth) for _ in range(num_vcs)]
        )


class Router:
    """A radix-P router instance inside a :class:`Network`."""

    __slots__ = (
        "rid",
        "radix",
        "config",
        "topology",
        "inputs",
        "outputs",
        "upstream",
        "allocator",
        "vc_policy",
        "_va_arbiters",
        "_matrix",
        "_va_pending",
        "_sa_active",
        "_eff_virtual_inputs",
        "_route_table",
        "_lookahead_cache",
        "_alloc_fast",
        "tracer",
    )

    def __init__(self, rid: int, config: RouterConfig, topology: Topology) -> None:
        self.rid = rid
        self.radix = topology.radix
        self.config = config
        self.topology = topology
        v = config.num_vcs
        self.inputs: list[list[InputVC]] = [
            [InputVC(p, i, config.buffer_depth) for i in range(v)]
            for p in range(self.radix)
        ]
        # Output ports are wired by the Network after all routers exist.
        self.outputs: list[OutputPort | None] = [None] * self.radix
        # Upstream credit sinks per input port (OutputPort or NI), or None
        # for dead-edge ports that can never receive flits.
        self.upstream: list[object | None] = [None] * self.radix
        self.allocator = _allocators.create(
            config.allocator,
            self.radix,
            self.radix,
            v,
            config.virtual_inputs,
        )
        self.vc_policy = _vc_policies.create(config.vc_policy)
        # Bound method (or None) resolved once: the allocator's forced-move
        # entry point, consulted before building a request matrix.
        self._alloc_fast = self.allocator.allocate_fast
        # Resolved once: config.effective_virtual_inputs canonicalises the
        # allocator name on every access, too slow for the VA loop.
        self._eff_virtual_inputs = config.effective_virtual_inputs
        self._va_arbiters = [RoundRobinArbiter(self.radix * v) for _ in range(self.radix)]
        self._matrix = RequestMatrix(self.radix, self.radix, v)
        # Routing is a pure function of (router, destination); resolving it
        # through a flat table turns the per-head route call into a list
        # index.  Lookahead directions are memoized the same way on first
        # use (keyed by output port and destination).
        self._route_table = [
            topology.route(rid, t) for t in range(topology.num_terminals)
        ]
        self._lookahead_cache: dict[tuple[int, int], int | None] = {}
        #: Optional FlitTracer (set via ``Observability.attach``); records
        #: VA grants.  ``None`` keeps the hooks dead branches.
        self.tracer = None
        # VCs waiting for VC allocation, in arrival order.
        self._va_pending: list[InputVC] = []
        # ACTIVE VCs: the only ones switch allocation needs to look at.
        # Entries are appended on the transition to ACTIVE and compacted out
        # after release, so idle ports cost nothing in the per-cycle scan.
        self._sa_active: list[InputVC] = []

    # --- flit arrival ------------------------------------------------------

    def accept_flit(self, port: int, vc: int, flit) -> None:
        """Buffer an arriving flit and, for heads, run lookahead routing."""
        ivc = self.inputs[port][vc]
        ivc.push(flit)
        if flit.is_head:
            if ivc.state is not VCState.IDLE:
                raise RuntimeError(
                    f"router {self.rid}: head flit for busy VC ({port}, {vc})"
                )
            ivc.src = flit.packet.src
            ivc.dst = flit.packet.dst
            out_port = self._route_table[flit.packet.dst]
            ivc.out_port = out_port
            out = self.outputs[out_port]
            if out is None:
                raise RuntimeError(
                    f"router {self.rid}: route to {ivc.dst} uses unwired port {out_port}"
                )
            if out.is_ejection:
                # Ejection needs no VC allocation: the NI always accepts.
                ivc.out_vc = 0
                ivc.state = VCState.ACTIVE
                if not ivc.in_sa:
                    ivc.in_sa = True
                    self._sa_active.append(ivc)
            else:
                ivc.state = VCState.VA_WAIT
                self._va_pending.append(ivc)

    # --- VC allocation ------------------------------------------------------

    def _lookahead(self, out_port: int, dst: int) -> int | None:
        """Memoized :meth:`Topology.lookahead_direction`."""
        key = (out_port, dst)
        cache = self._lookahead_cache
        direction = cache.get(key, _MISS)
        if direction is _MISS:
            direction = self.topology.lookahead_direction(self.rid, out_port, dst)
            cache[key] = direction
        return direction

    def vc_allocate(self) -> int:
        """Run one cycle of VC allocation; returns the number of grants."""
        if not self._va_pending:
            return 0
        v = self.config.num_vcs
        if len(self._va_pending) == 1:
            # Lone requester: it wins its output's arbitration regardless of
            # the pointer, so skip the grouping/candidate bookkeeping.  The
            # pointer still rotates past the winner, and the dateline class
            # filter still applies, exactly as in the general path below.
            ivc = self._va_pending[0]
            out_port = ivc.out_port
            out = self.outputs[out_port]
            out_vcs = out.out_vcs
            free = [w for w, ovc in enumerate(out_vcs) if not ovc.allocated]
            if not free:
                return 0
            self._va_arbiters[out_port].update(ivc.port * v + ivc.index)
            allowed = self.topology.allowed_vcs(
                self.rid, out_port, ivc.src, ivc.dst, v
            )
            if allowed is not None:
                free = [w for w in free if w in allowed]
                if not free:
                    return 0
            if len(free) == 1:
                # Every policy returns the lone candidate (max-credit takes
                # the max of one; the dimension policy picks from the only
                # group), so skip the policy call and its credit snapshot.
                choice = free[0]
            else:
                choice = self.vc_policy.select(
                    free,
                    [ovc.credits for ovc in out_vcs],
                    num_vcs=v,
                    virtual_inputs=self._eff_virtual_inputs,
                    downstream_direction=self._lookahead(out_port, ivc.dst),
                )
            out_vcs[choice].allocated = True
            ivc.out_vc = choice
            ivc.state = VCState.ACTIVE
            if not ivc.in_sa:
                ivc.in_sa = True
                self._sa_active.append(ivc)
            tracer = self.tracer
            if tracer is not None:
                head = ivc.queue[0]
                tracer.record(
                    tracer.cycle, head.packet.pid, head.seq, self.rid, "va", ivc.index
                )
            self._va_pending.clear()
            return 1
        by_output: dict[int, list[InputVC]] = {}
        for ivc in self._va_pending:
            by_output.setdefault(ivc.out_port, []).append(ivc)

        k = self._eff_virtual_inputs
        granted = 0
        for out_port, requesters in by_output.items():
            out = self.outputs[out_port]
            assert out is not None and not out.is_ejection
            free = [w for w, ovc in enumerate(out.out_vcs) if not ovc.allocated]
            if not free:
                continue
            credits = [ovc.credits for ovc in out.out_vcs]
            arbiter = self._va_arbiters[out_port]
            index_of = {r.port * v + r.index: r for r in requesters}
            while index_of and free:
                if len(index_of) == 1:
                    # Lone requester: wins regardless of the pointer.
                    win = next(iter(index_of))
                else:
                    win = arbiter.arbitrate(index_of.keys())
                    assert win is not None
                arbiter.update(win)
                ivc = index_of.pop(win)
                allowed = self.topology.allowed_vcs(
                    self.rid, out_port, ivc.src, ivc.dst, v
                )
                if allowed is None:
                    candidates = free
                else:
                    candidates = [w for w in free if w in allowed]
                    if not candidates:
                        # No free VC in the packet's (dateline) class this
                        # cycle; it stays in VA_WAIT and retries.
                        continue
                if len(candidates) == 1:
                    choice = candidates[0]  # forced; see the lone-requester path
                else:
                    choice = self.vc_policy.select(
                        candidates,
                        credits,
                        num_vcs=v,
                        virtual_inputs=k,
                        downstream_direction=self._lookahead(out_port, ivc.dst),
                    )
                free.remove(choice)
                out.out_vcs[choice].allocated = True
                ivc.out_vc = choice
                ivc.state = VCState.ACTIVE
                if not ivc.in_sa:
                    ivc.in_sa = True
                    self._sa_active.append(ivc)
                tracer = self.tracer
                if tracer is not None:
                    head = ivc.queue[0]
                    tracer.record(
                        tracer.cycle,
                        head.packet.pid,
                        head.seq,
                        self.rid,
                        "va",
                        ivc.index,
                    )
                granted += 1
        if granted:
            # One O(n) rebuild instead of O(n) list.remove per grant; the
            # granted VCs left VA_WAIT above, and filtering keeps arrival
            # order for the rest.
            self._va_pending = [
                ivc for ivc in self._va_pending if ivc.state is VCState.VA_WAIT
            ]
        return granted

    # --- switch allocation ---------------------------------------------------

    def switch_allocate(self) -> list[Grant]:
        """Build this cycle's request matrix and run the switch allocator.

        Only the router's ACTIVE VCs are visited (``_sa_active``), so the
        per-cycle cost scales with live traffic rather than ``radix x v``.
        Released VCs are compacted out of the list in the same pass.
        """
        active_list = self._sa_active
        if not active_list:
            return []
        outputs = self.outputs
        active = VCState.ACTIVE
        grant = Grant
        reqs: list[Grant] = []
        write = 0
        for ivc in active_list:
            if ivc.state is not active:
                # Tail departed since the last pass: drop the entry.
                ivc.in_sa = False
                continue
            active_list[write] = ivc
            write += 1
            if not ivc.queue:
                continue
            out_port = ivc.out_port
            out = outputs[out_port]
            if not out.is_ejection and out.out_vcs[ivc.out_vc].credits <= 0:
                continue
            reqs.append(grant(ivc.port, ivc.index, out_port))
        del active_list[write:]
        if not reqs:
            return []
        fast = self._alloc_fast
        if fast is not None:
            grants = fast(reqs)
            if grants is not None:
                return grants
        # Contended (or the scheme has no fast path): build the matrix.
        matrix = self._matrix
        matrix.clear()
        requests = matrix.requests
        tails = matrix.tails
        dirty = matrix.dirty
        inputs = self.inputs
        for p, vc, out_port in reqs:
            # Direct writes: the router's own state guarantees validity,
            # so skip RequestMatrix.add's range checks in the hot loop.
            requests[p][vc] = out_port
            tails[p][vc] = inputs[p][vc].queue[0].is_tail
            dirty.append((p, vc))
        return self.allocator.allocate(matrix)

    # --- introspection ---------------------------------------------------------

    def buffered_flits(self) -> int:
        """Total flits currently buffered in this router."""
        return sum(len(ivc.queue) for port in self.inputs for ivc in port)

    def reset_allocation_state(self) -> None:
        """Reset arbiter/allocator priority state (not buffer contents)."""
        self.allocator.reset()
        for arb in self._va_arbiters:
            arb.reset()
