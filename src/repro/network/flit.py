"""Flits and packets — the units of flow control and of routing.

Every packet is segmented into flits (head / body / tail, or a single
combined flit for one-flit packets).  Routing state lives in the input-VC
state machines of the routers, not in the flit, so flit objects stay small
and immutable apart from bookkeeping timestamps on the packet.
"""

from __future__ import annotations

from enum import IntEnum


class FlitType(IntEnum):
    """Flit kind within its packet."""

    HEAD = 0
    BODY = 1
    TAIL = 2
    #: Single-flit packet: head and tail at once (Section 4.4 uses these).
    SINGLE = 3


class Packet:
    """One network packet.

    Attributes
    ----------
    pid:
        Globally unique packet id (assigned by the traffic injector).
    src, dst:
        Terminal (node) ids.
    num_flits:
        Packet length in flits (the paper's default: 512-bit packets on a
        128-bit datapath = 4 flits).
    created_cycle:
        Cycle the packet entered its source queue (latency includes source
        queueing, as is standard).
    ejected_cycle:
        Cycle the tail flit left the network at the destination, or ``-1``.
    """

    __slots__ = ("pid", "src", "dst", "num_flits", "created_cycle", "ejected_cycle")

    def __init__(
        self, pid: int, src: int, dst: int, num_flits: int, created_cycle: int
    ) -> None:
        if num_flits < 1:
            raise ValueError(f"packet needs >= 1 flit, got {num_flits}")
        self.pid = pid
        self.src = src
        self.dst = dst
        self.num_flits = num_flits
        self.created_cycle = created_cycle
        self.ejected_cycle = -1

    @property
    def latency(self) -> int:
        """Total latency in cycles (valid once ejected)."""
        if self.ejected_cycle < 0:
            raise ValueError(f"packet {self.pid} not ejected yet")
        return self.ejected_cycle - self.created_cycle

    def make_flits(self) -> list["Flit"]:
        """Segment the packet into its flit sequence."""
        n = self.num_flits
        if n == 1:
            return [Flit(self, FlitType.SINGLE, 0)]
        flits = [Flit(self, FlitType.HEAD, 0)]
        flits.extend(Flit(self, FlitType.BODY, i) for i in range(1, n - 1))
        flits.append(Flit(self, FlitType.TAIL, n - 1))
        return flits

    def __repr__(self) -> str:
        return (
            f"Packet(pid={self.pid}, src={self.src}, dst={self.dst}, "
            f"flits={self.num_flits})"
        )


class Flit:
    """One flit of a packet.

    ``is_head``/``is_tail`` are precomputed plain attributes (not
    properties): they are read on every switch-allocation request in the
    simulator's hot loop.
    """

    __slots__ = ("packet", "ftype", "seq", "is_head", "is_tail")

    def __init__(self, packet: Packet, ftype: FlitType, seq: int) -> None:
        self.packet = packet
        self.ftype = ftype
        self.seq = seq
        #: True for the flit that opens the packet (HEAD or SINGLE).
        self.is_head = ftype is FlitType.HEAD or ftype is FlitType.SINGLE
        #: True for the flit that closes the packet (TAIL or SINGLE).
        self.is_tail = ftype is FlitType.TAIL or ftype is FlitType.SINGLE

    def __repr__(self) -> str:
        return f"Flit(pid={self.packet.pid}, {self.ftype.name}, seq={self.seq})"
