"""Topology abstraction.

A topology defines the routers, their port numbering, the directed links
between ports, the terminal-to-router attachment, and the deterministic
(DOR) routing function.  Port indices are used symmetrically: output port
``i`` of a router and input port ``i`` of the same router sit on the same
physical channel direction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """A directed inter-router channel."""

    src_router: int
    src_port: int
    dst_router: int
    dst_port: int


class Topology(ABC):
    """Base class for network topologies.

    Subclasses fix ``num_routers``, ``num_terminals``, ``concentration``
    (terminals per router) and ``radix`` (ports per router, locals
    included), and implement the port-level queries below.
    """

    name: str = "base"
    num_routers: int
    num_terminals: int
    concentration: int
    radix: int

    # --- structure -------------------------------------------------------

    @abstractmethod
    def neighbor(self, router: int, port: int) -> tuple[int, int] | None:
        """Router and input port on the far side of output ``port``.

        Returns ``None`` for local (terminal) ports and for mesh edge ports
        that have no neighbor.
        """

    def links(self) -> list[LinkSpec]:
        """Every directed inter-router link."""
        out: list[LinkSpec] = []
        for r in range(self.num_routers):
            for p in range(self.radix):
                nb = self.neighbor(r, p)
                if nb is not None:
                    out.append(LinkSpec(r, p, nb[0], nb[1]))
        return out

    def is_local_port(self, port: int) -> bool:
        """True when ``port`` attaches a terminal rather than a router."""
        return port < self.concentration

    @abstractmethod
    def router_of(self, terminal: int) -> tuple[int, int]:
        """``(router, local_port)`` a terminal attaches to."""

    def terminal_of(self, router: int, local_port: int) -> int:
        """Terminal attached to ``(router, local_port)``."""
        if not self.is_local_port(local_port):
            raise ValueError(f"port {local_port} is not a local port")
        term = router * self.concentration + local_port
        if term >= self.num_terminals:
            raise ValueError(f"({router}, {local_port}) has no terminal")
        return term

    # --- routing ---------------------------------------------------------

    @abstractmethod
    def route(self, router: int, dst_terminal: int) -> int:
        """DOR output port at ``router`` toward ``dst_terminal``.

        Returns the destination's local port when ``router`` is the
        destination router.
        """

    @abstractmethod
    def port_direction_class(self, port: int) -> int | None:
        """Dimension class of a port: 0 for X, 1 for Y, ``None`` for local.

        Used by the Section 2.3 VC assignment policy.
        """

    @abstractmethod
    def min_hops(self, src_terminal: int, dst_terminal: int) -> int:
        """Router-to-router hops on the DOR path between two terminals."""

    def allowed_vcs(
        self,
        router: int,
        out_port: int,
        src_terminal: int,
        dst_terminal: int,
        num_vcs: int,
    ) -> list[int] | None:
        """Downstream VCs a packet may be assigned when crossing ``out_port``.

        ``None`` means no restriction (the default).  Topologies that need
        VC classes for deadlock freedom (e.g. the torus datelines) override
        this; the router's VC allocator filters its candidates through it.
        """
        return None

    # --- convenience -----------------------------------------------------

    def lookahead_direction(self, router: int, out_port: int, dst_terminal: int) -> int | None:
        """Direction class of the port the packet will take *downstream*.

        ``out_port`` is the port the packet is about to cross at ``router``;
        the return value classifies its next hop after that (``None`` when
        it ejects at the downstream router, or when ``out_port`` is already
        the ejection port).
        """
        if self.is_local_port(out_port):
            return None
        nb = self.neighbor(router, out_port)
        if nb is None:
            raise ValueError(f"output port {out_port} of router {router} is a dead end")
        next_port = self.route(nb[0], dst_terminal)
        return self.port_direction_class(next_port)

    def path(self, src_terminal: int, dst_terminal: int) -> list[int]:
        """Router sequence of the DOR path (for tests/analysis)."""
        router, _ = self.router_of(src_terminal)
        seq = [router]
        guard = 0
        while True:
            port = self.route(router, dst_terminal)
            if self.is_local_port(port):
                return seq
            nb = self.neighbor(router, port)
            if nb is None:
                raise RuntimeError(
                    f"route from router {router} to terminal {dst_terminal} "
                    f"fell off the network at port {port}"
                )
            router = nb[0]
            seq.append(router)
            guard += 1
            if guard > self.num_routers:
                raise RuntimeError("routing loop detected")
