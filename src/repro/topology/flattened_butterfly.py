"""Flattened butterfly (FBfly) topology — Kim, Balfour & Dally, MICRO 2007.

Routers are arranged in a grid with concentration ``c``; every router has a
direct (express) channel to *every* other router in its row and in its
column.  The paper's 64-terminal FBfly is a 4x4 router grid with 4:1
concentration: radix = 4 locals + 3 row peers + 3 column peers = 10.

Port numbering for a ``width x height`` grid with concentration ``c``:

* ``0..c-1`` — local (terminal) ports;
* ``c .. c+width-2`` — row (X-dimension) ports, one per other column, in
  ascending column order skipping the router's own column;
* ``c+width-1 .. c+width+height-3`` — column (Y-dimension) ports, one per
  other row, ascending and skipping the router's own row.

DOR crosses the X dimension in one express hop, then Y — at most two hops
between any pair of routers.
"""

from __future__ import annotations

from repro.routing.dor import fbfly_hops, fbfly_next_dimension

from .base import Topology


class FlattenedButterflyTopology(Topology):
    """Flattened butterfly on a ``width x height`` router grid."""

    name = "fbfly"

    def __init__(self, width: int = 4, height: int = 4, concentration: int = 4) -> None:
        if width < 2 or height < 2:
            raise ValueError(f"fbfly needs width, height >= 2; got {width}x{height}")
        if concentration < 1:
            raise ValueError(f"concentration must be >= 1, got {concentration}")
        self.width = width
        self.height = height
        self.concentration = concentration
        self.num_routers = width * height
        self.num_terminals = self.num_routers * concentration
        self.radix = concentration + (width - 1) + (height - 1)
        self._row_base = concentration
        self._col_base = concentration + (width - 1)

    def coords(self, router: int) -> tuple[int, int]:
        """Grid coordinates ``(x, y)`` of a router."""
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")
        return router % self.width, router // self.width

    def router_at(self, x: int, y: int) -> int:
        """Router id at grid coordinates."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} fbfly")
        return y * self.width + x

    def row_port(self, router: int, dst_col: int) -> int:
        """Port at ``router`` that reaches column ``dst_col`` in its row."""
        x, _ = self.coords(router)
        if dst_col == x:
            raise ValueError("no row port to the router's own column")
        if not 0 <= dst_col < self.width:
            raise ValueError(f"column {dst_col} out of range")
        index = dst_col if dst_col < x else dst_col - 1
        return self._row_base + index

    def col_port(self, router: int, dst_row: int) -> int:
        """Port at ``router`` that reaches row ``dst_row`` in its column."""
        _, y = self.coords(router)
        if dst_row == y:
            raise ValueError("no column port to the router's own row")
        if not 0 <= dst_row < self.height:
            raise ValueError(f"row {dst_row} out of range")
        index = dst_row if dst_row < y else dst_row - 1
        return self._col_base + index

    def neighbor(self, router: int, port: int) -> tuple[int, int] | None:
        if self.is_local_port(port):
            return None
        x, y = self.coords(router)
        if self._row_base <= port < self._col_base:
            index = port - self._row_base
            dst_col = index if index < x else index + 1
            dst = self.router_at(dst_col, y)
            return dst, self.row_port(dst, x)
        if self._col_base <= port < self.radix:
            index = port - self._col_base
            dst_row = index if index < y else index + 1
            dst = self.router_at(x, dst_row)
            return dst, self.col_port(dst, y)
        raise ValueError(f"port {port} out of range for radix-{self.radix} router")

    def router_of(self, terminal: int) -> tuple[int, int]:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return terminal // self.concentration, terminal % self.concentration

    def route(self, router: int, dst_terminal: int) -> int:
        dst_router, local = self.router_of(dst_terminal)
        cx, cy = self.coords(router)
        dx, dy = self.coords(dst_router)
        hop = fbfly_next_dimension(cx, cy, dx, dy)
        if hop is None:
            return local
        dim, target = hop
        if dim == 0:
            return self.row_port(router, target)
        return self.col_port(router, target)

    def port_direction_class(self, port: int) -> int | None:
        if self.is_local_port(port):
            return None
        if self._row_base <= port < self._col_base:
            return 0
        if self._col_base <= port < self.radix:
            return 1
        raise ValueError(f"port {port} out of range for radix-{self.radix} router")

    def min_hops(self, src_terminal: int, dst_terminal: int) -> int:
        sx, sy = self.coords(self.router_of(src_terminal)[0])
        dx, dy = self.coords(self.router_of(dst_terminal)[0])
        return fbfly_hops(sx, sy, dx, dy)
