"""2D torus topology with dateline VC classes (library extension).

The paper evaluates mesh, CMesh and FBfly; a torus is the natural fourth
member of the family and is included as an extension.  Wraparound links
make minimal DOR routing non-deadlock-free on their own: each ring forms a
cyclic channel dependency.  The standard fix (Dally & Towles ch. 13) is
*dateline* VC classes — a packet travels in VC class 0 until its ring
traversal crosses the wrap link, then must use class 1, which breaks the
cycle.  VC classes interleave over the VC indices (``vc % 2``), so they
compose with VIX's contiguous virtual-input sub-groups: every sub-group
contains VCs of both classes.

Because routing is deterministic, a packet's class at any router is a pure
function of (source, destination, position); the topology exposes it via
:meth:`allowed_vcs`, which the router's VC allocator uses to filter
candidate downstream VCs.
"""

from __future__ import annotations

from .base import Topology

PORT_LOCAL = 0
PORT_EAST = 1
PORT_WEST = 2
PORT_NORTH = 3
PORT_SOUTH = 4

_OPPOSITE = {
    PORT_EAST: PORT_WEST,
    PORT_WEST: PORT_EAST,
    PORT_NORTH: PORT_SOUTH,
    PORT_SOUTH: PORT_NORTH,
}


def _ring_direction(src: int, dst: int, size: int) -> int:
    """Minimal direction on a ring: +1 (increasing) or -1; ties go +1."""
    delta = (dst - src) % size
    if delta == 0:
        raise ValueError("no travel needed")
    return 1 if delta <= size // 2 else -1


def _ring_crossed_wrap(src: int, cur: int, dst: int, size: int) -> bool:
    """Has minimal travel ``src -> dst`` crossed the wrap link by ``cur``?

    The wrap link is ``size-1 -> 0`` when travelling in the increasing
    direction and ``0 -> size-1`` in the decreasing direction.
    """
    direction = _ring_direction(src, dst, size)
    if direction > 0:
        steps = (cur - src) % size
        return src + steps >= size
    steps = (src - cur) % size
    return steps > src


class TorusTopology(Topology):
    """``width x height`` 2D torus, one terminal per radix-5 router."""

    name = "torus"

    #: VC classes needed for deadlock freedom on the rings.
    num_vc_classes = 2

    def __init__(self, width: int = 8, height: int = 8) -> None:
        if width < 3 or height < 3:
            raise ValueError(
                f"torus needs width, height >= 3 (wrap links are degenerate "
                f"below that); got {width}x{height}"
            )
        self.width = width
        self.height = height
        self.num_routers = width * height
        self.num_terminals = self.num_routers
        self.concentration = 1
        self.radix = 5

    def coords(self, router: int) -> tuple[int, int]:
        """Grid coordinates ``(x, y)``; y grows southward."""
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")
        return router % self.width, router // self.width

    def router_at(self, x: int, y: int) -> int:
        """Router id at (wrapped) grid coordinates."""
        return (y % self.height) * self.width + (x % self.width)

    def neighbor(self, router: int, port: int) -> tuple[int, int] | None:
        if port == PORT_LOCAL:
            return None
        x, y = self.coords(router)
        if port == PORT_EAST:
            return self.router_at(x + 1, y), _OPPOSITE[port]
        if port == PORT_WEST:
            return self.router_at(x - 1, y), _OPPOSITE[port]
        if port == PORT_NORTH:
            return self.router_at(x, y - 1), _OPPOSITE[port]
        if port == PORT_SOUTH:
            return self.router_at(x, y + 1), _OPPOSITE[port]
        raise ValueError(f"port {port} out of range for radix-5 torus router")

    def router_of(self, terminal: int) -> tuple[int, int]:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return terminal, PORT_LOCAL

    def route(self, router: int, dst_terminal: int) -> int:
        dst_router, _ = self.router_of(dst_terminal)
        cx, cy = self.coords(router)
        dx, dy = self.coords(dst_router)
        if cx != dx:
            direction = _ring_direction(cx, dx, self.width)
            return PORT_EAST if direction > 0 else PORT_WEST
        if cy != dy:
            direction = _ring_direction(cy, dy, self.height)
            return PORT_SOUTH if direction > 0 else PORT_NORTH
        return PORT_LOCAL

    def port_direction_class(self, port: int) -> int | None:
        if port == PORT_LOCAL:
            return None
        if port in (PORT_EAST, PORT_WEST):
            return 0
        if port in (PORT_NORTH, PORT_SOUTH):
            return 1
        raise ValueError(f"port {port} out of range for radix-5 torus router")

    def min_hops(self, src_terminal: int, dst_terminal: int) -> int:
        sx, sy = self.coords(self.router_of(src_terminal)[0])
        dx, dy = self.coords(self.router_of(dst_terminal)[0])
        ring_x = min((dx - sx) % self.width, (sx - dx) % self.width)
        ring_y = min((dy - sy) % self.height, (sy - dy) % self.height)
        return ring_x + ring_y

    # --- dateline VC classes -------------------------------------------------

    def vc_class_at(
        self,
        router: int,
        src_terminal: int,
        dst_terminal: int,
        via_dim: int,
    ) -> int:
        """Dateline class of the VC a packet occupies at ``router``.

        The class belongs to the **ring that delivered the packet**:
        ``via_dim`` is 0 when the packet entered ``router`` over an
        X-dimension channel, 1 for Y.  This matters at the dimension-turn
        router: the packet sits in an X-ring buffer there, so the X
        dateline discipline must keep applying even though its next hop is
        in Y — classifying by the *next* hop instead re-opens the X-ring
        cycle at the wrap column (a deadlock we regression-test against).
        """
        sx, sy = self.coords(self.router_of(src_terminal)[0])
        dx, dy = self.coords(self.router_of(dst_terminal)[0])
        cx, cy = self.coords(router)
        if via_dim == 0:
            if sx == dx:
                return 0  # no X travel happened; vacuous
            return 1 if _ring_crossed_wrap(sx, cx, dx, self.width) else 0
        if via_dim == 1:
            if sy == dy:
                return 0
            return 1 if _ring_crossed_wrap(sy, cy, dy, self.height) else 0
        raise ValueError(f"via_dim must be 0 (X) or 1 (Y), got {via_dim}")

    def allowed_vcs(
        self, router: int, out_port: int, src_terminal: int, dst_terminal: int, num_vcs: int
    ) -> list[int] | None:
        """Downstream VCs the packet may occupy after crossing ``out_port``.

        VC classes interleave over indices: class ``c`` owns the VCs with
        ``vc % 2 == c``.  The class is the dateline state of the ring the
        hop travels on (``out_port``'s dimension) evaluated at the
        downstream router.  Returns ``None`` (no restriction) for ejection.
        """
        if self.is_local_port(out_port):
            return None
        if num_vcs < self.num_vc_classes:
            raise ValueError(
                f"torus dateline routing needs >= {self.num_vc_classes} VCs, "
                f"got {num_vcs}"
            )
        dim = self.port_direction_class(out_port)
        assert dim is not None
        downstream = self.neighbor(router, out_port)[0]
        cls = self.vc_class_at(downstream, src_terminal, dst_terminal, via_dim=dim)
        return [vc for vc in range(num_vcs) if vc % 2 == cls]
