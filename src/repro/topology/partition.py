"""Partitioning a topology into chiplet simulation domains.

A :class:`PartitionPlan` is the pure-data answer to "which router lives
on which chiplet": a router→domain assignment, the induced terminal
assignment, and the list of *cut links* — directed topology links whose
endpoints fall in different domains.  Everything downstream (the
:class:`~repro.network.domain.DomainNetwork` builders, the
:class:`~repro.network.links.InterChipLink` construction, the invariant
checkers) consumes the plan; nothing re-derives the cut.

The ``grid`` scheme mirrors fpgagraphlib's partitioning of one logical
network onto an FPGA grid: the router grid is sliced into ``px x py``
equal rectangles, one domain per rectangle.  It applies to every
registered topology that exposes grid coordinates (``width`` /
``height`` / ``coords``), which is all of them — mesh, cmesh, torus,
and the flattened butterfly (whose row/column express links simply
produce more cut links per domain boundary).  A ``1x1`` grid degenerates
to one domain owning everything and needs no coordinates at all, so the
monolithic-equivalence gate works for any topology.

Plans are registered in :data:`repro.registry.partitioners`; a scheme
factory has signature ``factory(topology, dims) -> PartitionPlan``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registry import partitioners as partitioner_registry

from .base import LinkSpec, Topology


@dataclass(frozen=True)
class PartitionPlan:
    """One topology cut into simulation domains (pure data, no behaviour)."""

    #: Partition grid dimensions ``(px, py)``.
    dims: tuple[int, int]
    #: ``router id -> domain index`` for every router of the topology.
    router_domain: tuple[int, ...]
    #: Per-domain owned router ids, ascending.
    domain_routers: tuple[tuple[int, ...], ...]
    #: Per-domain owned terminal ids, ascending.
    domain_terminals: tuple[tuple[int, ...], ...]
    #: Directed topology links crossing a domain boundary, in
    #: ``topology.links()`` order (the inter-chip links to build).
    cut_links: tuple[LinkSpec, ...]

    @property
    def num_domains(self) -> int:
        return len(self.domain_routers)

    def boundary_ports(self, domain: int) -> dict[str, tuple[tuple[int, int], ...]]:
        """The domain's boundary ports as ``(router, port)`` pairs.

        ``egress`` ports source a cut link (the domain's routers send
        through them); ``ingress`` ports sink one (flits arrive on them
        from another domain).  One cut link contributes exactly one
        egress port (at its source domain) and one ingress port (at its
        destination domain), so ``sum(len(egress))`` over all domains
        equals ``len(cut_links)``.
        """
        rd = self.router_domain
        egress = tuple(
            (spec.src_router, spec.src_port)
            for spec in self.cut_links
            if rd[spec.src_router] == domain
        )
        ingress = tuple(
            (spec.dst_router, spec.dst_port)
            for spec in self.cut_links
            if rd[spec.dst_router] == domain
        )
        return {"egress": egress, "ingress": ingress}


def _plan_from_assignment(
    topology: Topology, dims: tuple[int, int], router_domain: list[int]
) -> PartitionPlan:
    """Derive the per-domain sets and the cut from a router assignment."""
    num_domains = dims[0] * dims[1]
    domain_routers: list[list[int]] = [[] for _ in range(num_domains)]
    for rid, dom in enumerate(router_domain):
        domain_routers[dom].append(rid)
    empty = [d for d, routers in enumerate(domain_routers) if not routers]
    if empty:
        raise ValueError(
            f"partition {dims[0]}x{dims[1]} leaves domain(s) {empty} without "
            f"routers on this {topology.num_routers}-router topology"
        )
    domain_terminals: list[list[int]] = [[] for _ in range(num_domains)]
    for t in range(topology.num_terminals):
        domain_terminals[router_domain[topology.router_of(t)[0]]].append(t)
    cut = tuple(
        spec
        for spec in topology.links()
        if router_domain[spec.src_router] != router_domain[spec.dst_router]
    )
    return PartitionPlan(
        dims=(dims[0], dims[1]),
        router_domain=tuple(router_domain),
        domain_routers=tuple(tuple(r) for r in domain_routers),
        domain_terminals=tuple(tuple(t) for t in domain_terminals),
        cut_links=cut,
    )


def grid_partition(topology: Topology, dims: tuple[int, int]) -> PartitionPlan:
    """Cut a grid topology into ``px x py`` rectangular chiplet domains.

    Domains are numbered row-major over the partition grid (domain
    ``gy * px + gx``).  ``px`` and ``py`` must divide the router grid's
    width and height so every chiplet is the same size — uneven chiplets
    would silently skew any per-domain comparison.  The ``1x1`` grid is
    topology-agnostic: one domain owns every router.
    """
    px, py = int(dims[0]), int(dims[1])
    if px < 1 or py < 1:
        raise ValueError(f"partition grid must be >= 1x1, got {px}x{py}")
    if px == 1 and py == 1:
        return _plan_from_assignment(topology, (1, 1), [0] * topology.num_routers)
    width = getattr(topology, "width", None)
    height = getattr(topology, "height", None)
    if width is None or height is None or not hasattr(topology, "coords"):
        raise ValueError(
            f"{type(topology).__name__} exposes no router grid "
            f"(width/height/coords); only a 1x1 partition applies"
        )
    if width % px or height % py:
        raise ValueError(
            f"partition grid {px}x{py} does not divide the "
            f"{width}x{height} router grid"
        )
    cw, ch = width // px, height // py
    router_domain = []
    for rid in range(topology.num_routers):
        x, y = topology.coords(rid)
        router_domain.append((y // ch) * px + (x // cw))
    return _plan_from_assignment(topology, (px, py), router_domain)


partitioner_registry.register(
    "grid",
    grid_partition,
    aliases=("chiplet_grid",),
    label="rectangular chiplet grid",
    provenance="fpgagraphlib-style px x py cut of the router grid; "
    "1x1 degenerates to the monolithic network",
)


def make_partition(
    scheme: str, topology: Topology, dims: tuple[int, int]
) -> PartitionPlan:
    """Build a partition plan by registry name (dispatch helper)."""
    return partitioner_registry.create(scheme, topology, dims)


__all__ = ["PartitionPlan", "grid_partition", "make_partition"]
