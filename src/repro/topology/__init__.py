"""Network topologies: mesh, concentrated mesh, flattened butterfly.

All three of the paper's 64-terminal configurations are available through
:func:`make_topology`:

* ``"mesh"``  — 8x8 mesh, radix-5 routers;
* ``"cmesh"`` — 4x4 concentrated mesh (4:1), radix-8 routers;
* ``"fbfly"`` — 4x4 flattened butterfly (4:1), radix-10 routers.
"""

from __future__ import annotations

import math

from repro.registry import topologies as topology_registry

from .base import LinkSpec, Topology
from .cmesh import CMeshTopology
from .flattened_butterfly import FlattenedButterflyTopology
from .mesh import MeshTopology
from .torus import TorusTopology


def _square_side(kind: str, num_terminals: int) -> int:
    side = math.isqrt(num_terminals)
    if side * side != num_terminals:
        raise ValueError(
            f"{kind} needs a square terminal count, got {num_terminals}"
        )
    return side


def _concentrated_side(kind: str, num_terminals: int) -> int:
    if num_terminals % 4 != 0:
        raise ValueError(
            f"{kind} (4:1) needs terminals divisible by 4, got {num_terminals}"
        )
    side = math.isqrt(num_terminals // 4)
    if side * side * 4 != num_terminals:
        raise ValueError(f"{kind} (4:1) needs 4*k^2 terminals, got {num_terminals}")
    return side


def _make_mesh(num_terminals: int) -> Topology:
    side = _square_side("mesh", num_terminals)
    return MeshTopology(side, side)


def _make_cmesh(num_terminals: int) -> Topology:
    side = _concentrated_side("cmesh", num_terminals)
    return CMeshTopology(side, side, concentration=4)


def _make_fbfly(num_terminals: int) -> Topology:
    side = _concentrated_side("fbfly", num_terminals)
    return FlattenedButterflyTopology(side, side, concentration=4)


def _make_torus(num_terminals: int) -> Topology:
    side = _square_side("torus", num_terminals)
    return TorusTopology(side, side)


topology_registry.register(
    "mesh",
    _make_mesh,
    label="Mesh",
    provenance="8x8 mesh, radix-5 routers (paper Section 3)",
)
topology_registry.register(
    "cmesh",
    _make_cmesh,
    aliases=("concentrated_mesh",),
    label="CMesh",
    provenance="4x4 concentrated mesh (4:1), radix-8 routers",
)
topology_registry.register(
    "fbfly",
    _make_fbfly,
    aliases=("flattened_butterfly",),
    label="FBfly",
    provenance="4x4 flattened butterfly (4:1), radix-10 routers",
)
topology_registry.register(
    "torus",
    _make_torus,
    label="Torus",
    provenance="extension topology (wraparound mesh)",
)

TOPOLOGY_NAMES = topology_registry.names()


def make_topology(name: str, num_terminals: int = 64) -> Topology:
    """Build one of the paper's topologies scaled to ``num_terminals``
    (registry dispatch).

    ``num_terminals`` must be a square (mesh/torus) or 4x a square
    (cmesh/fbfly with the paper's 4:1 concentration).
    """
    return topology_registry.create(name, num_terminals)


__all__ = [
    "CMeshTopology",
    "FlattenedButterflyTopology",
    "LinkSpec",
    "MeshTopology",
    "TOPOLOGY_NAMES",
    "Topology",
    "TorusTopology",
    "make_topology",
]
