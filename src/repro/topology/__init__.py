"""Network topologies: mesh, concentrated mesh, flattened butterfly.

All three of the paper's 64-terminal configurations are available through
:func:`make_topology`:

* ``"mesh"``  — 8x8 mesh, radix-5 routers;
* ``"cmesh"`` — 4x4 concentrated mesh (4:1), radix-8 routers;
* ``"fbfly"`` — 4x4 flattened butterfly (4:1), radix-10 routers.
"""

from __future__ import annotations

import math

from .base import LinkSpec, Topology
from .cmesh import CMeshTopology
from .flattened_butterfly import FlattenedButterflyTopology
from .mesh import MeshTopology
from .torus import TorusTopology

TOPOLOGY_NAMES = ("mesh", "cmesh", "fbfly", "torus")


def make_topology(name: str, num_terminals: int = 64) -> Topology:
    """Build one of the paper's topologies scaled to ``num_terminals``.

    ``num_terminals`` must be a square (mesh) or 4x a square (cmesh/fbfly
    with the paper's 4:1 concentration).
    """
    key = name.strip().lower()
    if key == "mesh":
        side = math.isqrt(num_terminals)
        if side * side != num_terminals:
            raise ValueError(f"mesh needs a square terminal count, got {num_terminals}")
        return MeshTopology(side, side)
    if key == "cmesh":
        if num_terminals % 4 != 0:
            raise ValueError(f"cmesh (4:1) needs terminals divisible by 4, got {num_terminals}")
        side = math.isqrt(num_terminals // 4)
        if side * side * 4 != num_terminals:
            raise ValueError(
                f"cmesh (4:1) needs 4*k^2 terminals, got {num_terminals}"
            )
        return CMeshTopology(side, side, concentration=4)
    if key == "torus":
        side = math.isqrt(num_terminals)
        if side * side != num_terminals:
            raise ValueError(
                f"torus needs a square terminal count, got {num_terminals}"
            )
        return TorusTopology(side, side)
    if key == "fbfly":
        if num_terminals % 4 != 0:
            raise ValueError(f"fbfly (4:1) needs terminals divisible by 4, got {num_terminals}")
        side = math.isqrt(num_terminals // 4)
        if side * side * 4 != num_terminals:
            raise ValueError(
                f"fbfly (4:1) needs 4*k^2 terminals, got {num_terminals}"
            )
        return FlattenedButterflyTopology(side, side, concentration=4)
    raise ValueError(f"unknown topology {name!r}; expected one of {TOPOLOGY_NAMES}")


__all__ = [
    "CMeshTopology",
    "FlattenedButterflyTopology",
    "LinkSpec",
    "MeshTopology",
    "TOPOLOGY_NAMES",
    "Topology",
    "TorusTopology",
    "make_topology",
]
