"""Concentrated mesh (CMesh) topology — Balfour & Dally, ICS 2006.

A CMesh attaches ``c`` terminals to every mesh router, shrinking the router
grid by the concentration factor.  The paper's 64-terminal CMesh uses a
4x4 router grid with 4:1 concentration, giving radix-8 routers
(4 local + E/W/N/S).

Port numbering: 0..c-1 = Local0..Local3, then c+0 = East, c+1 = West,
c+2 = North, c+3 = South.
"""

from __future__ import annotations

from repro.routing.dor import MeshDirection, mesh_hops, mesh_next_direction

from .base import Topology

_DIR_OFFSET = {
    MeshDirection.EAST: 0,
    MeshDirection.WEST: 1,
    MeshDirection.NORTH: 2,
    MeshDirection.SOUTH: 3,
}
_OPPOSITE_OFFSET = {0: 1, 1: 0, 2: 3, 3: 2}


class CMeshTopology(Topology):
    """``width x height`` mesh of routers with ``concentration`` terminals each."""

    name = "cmesh"

    def __init__(self, width: int = 4, height: int = 4, concentration: int = 4) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"cmesh needs width, height >= 1; got {width}x{height}")
        if concentration < 1:
            raise ValueError(f"concentration must be >= 1, got {concentration}")
        self.width = width
        self.height = height
        self.concentration = concentration
        self.num_routers = width * height
        self.num_terminals = self.num_routers * concentration
        self.radix = concentration + 4

    def coords(self, router: int) -> tuple[int, int]:
        """Grid coordinates ``(x, y)`` of a router; y grows southward."""
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")
        return router % self.width, router // self.width

    def router_at(self, x: int, y: int) -> int:
        """Router id at grid coordinates."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} cmesh")
        return y * self.width + x

    def _mesh_port(self, direction: MeshDirection) -> int:
        return self.concentration + _DIR_OFFSET[direction]

    def neighbor(self, router: int, port: int) -> tuple[int, int] | None:
        if self.is_local_port(port):
            return None
        offset = port - self.concentration
        if not 0 <= offset < 4:
            raise ValueError(f"port {port} out of range for radix-{self.radix} router")
        x, y = self.coords(router)
        step = {0: (1, 0), 1: (-1, 0), 2: (0, -1), 3: (0, 1)}[offset]
        nx, ny = x + step[0], y + step[1]
        if not (0 <= nx < self.width and 0 <= ny < self.height):
            return None  # mesh edge
        return (
            self.router_at(nx, ny),
            self.concentration + _OPPOSITE_OFFSET[offset],
        )

    def router_of(self, terminal: int) -> tuple[int, int]:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return terminal // self.concentration, terminal % self.concentration

    def route(self, router: int, dst_terminal: int) -> int:
        dst_router, local = self.router_of(dst_terminal)
        cx, cy = self.coords(router)
        dx, dy = self.coords(dst_router)
        direction = mesh_next_direction(cx, cy, dx, dy)
        if direction is MeshDirection.LOCAL:
            return local
        return self._mesh_port(direction)

    def port_direction_class(self, port: int) -> int | None:
        if self.is_local_port(port):
            return None
        offset = port - self.concentration
        if offset in (0, 1):
            return 0
        if offset in (2, 3):
            return 1
        raise ValueError(f"port {port} out of range for radix-{self.radix} router")

    def min_hops(self, src_terminal: int, dst_terminal: int) -> int:
        sx, sy = self.coords(self.router_of(src_terminal)[0])
        dx, dy = self.coords(self.router_of(dst_terminal)[0])
        return mesh_hops(sx, sy, dx, dy)
