"""2D mesh topology (radix-5 routers, one terminal each).

Port numbering: 0 = Local, 1 = East, 2 = West, 3 = North, 4 = South.
The paper's main evaluation network is the 8x8 (64-node) mesh.
"""

from __future__ import annotations

from repro.routing.dor import MeshDirection, mesh_hops, mesh_next_direction

from .base import Topology

PORT_LOCAL = 0
PORT_EAST = 1
PORT_WEST = 2
PORT_NORTH = 3
PORT_SOUTH = 4

_DIRECTION_TO_PORT = {
    MeshDirection.EAST: PORT_EAST,
    MeshDirection.WEST: PORT_WEST,
    MeshDirection.NORTH: PORT_NORTH,
    MeshDirection.SOUTH: PORT_SOUTH,
    MeshDirection.LOCAL: PORT_LOCAL,
}

#: Input port on the far router that faces back along each output port.
_OPPOSITE = {
    PORT_EAST: PORT_WEST,
    PORT_WEST: PORT_EAST,
    PORT_NORTH: PORT_SOUTH,
    PORT_SOUTH: PORT_NORTH,
}


class MeshTopology(Topology):
    """``width x height`` 2D mesh with one terminal per router."""

    name = "mesh"

    def __init__(self, width: int = 8, height: int = 8) -> None:
        if width < 2 or height < 2:
            raise ValueError(f"mesh needs width, height >= 2; got {width}x{height}")
        self.width = width
        self.height = height
        self.num_routers = width * height
        self.num_terminals = self.num_routers
        self.concentration = 1
        self.radix = 5

    def coords(self, router: int) -> tuple[int, int]:
        """Grid coordinates ``(x, y)`` of a router; y grows southward."""
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")
        return router % self.width, router // self.width

    def router_at(self, x: int, y: int) -> int:
        """Router id at grid coordinates."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def neighbor(self, router: int, port: int) -> tuple[int, int] | None:
        x, y = self.coords(router)
        if port == PORT_LOCAL:
            return None
        if port == PORT_EAST and x + 1 < self.width:
            return self.router_at(x + 1, y), _OPPOSITE[port]
        if port == PORT_WEST and x - 1 >= 0:
            return self.router_at(x - 1, y), _OPPOSITE[port]
        if port == PORT_NORTH and y - 1 >= 0:
            return self.router_at(x, y - 1), _OPPOSITE[port]
        if port == PORT_SOUTH and y + 1 < self.height:
            return self.router_at(x, y + 1), _OPPOSITE[port]
        if port in _OPPOSITE:
            return None  # mesh edge
        raise ValueError(f"port {port} out of range for radix-5 mesh router")

    def router_of(self, terminal: int) -> tuple[int, int]:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return terminal, PORT_LOCAL

    def route(self, router: int, dst_terminal: int) -> int:
        dst_router, _ = self.router_of(dst_terminal)
        cx, cy = self.coords(router)
        dx, dy = self.coords(dst_router)
        return _DIRECTION_TO_PORT[mesh_next_direction(cx, cy, dx, dy)]

    def port_direction_class(self, port: int) -> int | None:
        if port == PORT_LOCAL:
            return None
        if port in (PORT_EAST, PORT_WEST):
            return 0
        if port in (PORT_NORTH, PORT_SOUTH):
            return 1
        raise ValueError(f"port {port} out of range for radix-5 mesh router")

    def min_hops(self, src_terminal: int, dst_terminal: int) -> int:
        sx, sy = self.coords(self.router_of(src_terminal)[0])
        dx, dy = self.coords(self.router_of(dst_terminal)[0])
        return mesh_hops(sx, sy, dx, dy)
