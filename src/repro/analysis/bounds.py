"""Analytic channel-load bounds (Dally & Towles, ch. 3.3).

For a deterministic routing function and a traffic pattern with a known
destination distribution, the expected load on every channel is computable
exactly: walk each (source, destination) flow's DOR path and accumulate its
weight on each link.  The *saturation bound* is the injection bandwidth at
which the most-loaded channel reaches capacity:

    theta_max (flits/cycle/node)  =  1 / max_c gamma_c

where ``gamma_c`` is channel ``c``'s load per unit of injected traffic.

No allocator can exceed this wiring limit; an ideal allocator approaches
it.  These bounds validate the simulator (measured accepted throughput must
stay below the bound) and explain the Figure 8/12 headroom picture: on the
uniform-random mesh the bound is 0.5 flits/cycle/node, the separable
baseline reaches ~0.375 (75%), and VIX ~0.43 (86%) — allocation quality is
exactly the remaining gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.base import Topology
from repro.traffic.patterns import TrafficPattern


@dataclass(frozen=True)
class ChannelLoadAnalysis:
    """Result of an exact channel-load computation."""

    topology: str
    pattern: str
    #: Expected flits/cycle on each link per unit injection, keyed by
    #: (router, output port).
    loads: dict[tuple[int, int], float]

    @property
    def max_load(self) -> float:
        """Load of the most-stressed channel (per injected flit/node/cycle)."""
        return max(self.loads.values()) if self.loads else 0.0

    @property
    def saturation_bound(self) -> float:
        """Maximum sustainable injection rate in flits/cycle/node."""
        gamma = self.max_load
        return float("inf") if gamma == 0 else 1.0 / gamma

    def hottest_channels(self, n: int = 5) -> list[tuple[tuple[int, int], float]]:
        """The ``n`` most-loaded channels."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        return sorted(self.loads.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def channel_loads(topology: Topology, pattern: TrafficPattern) -> ChannelLoadAnalysis:
    """Exact per-channel load under ``pattern`` at unit injection.

    Every terminal injects one flit per cycle in expectation; each flow
    ``(s, d)`` carries ``P(d | s)`` of its source's traffic along the
    deterministic route.  Requires the pattern to expose its
    :meth:`~repro.traffic.patterns.TrafficPattern.distribution`.
    """
    if pattern.num_terminals != topology.num_terminals:
        raise ValueError(
            f"pattern sized for {pattern.num_terminals} terminals, "
            f"topology has {topology.num_terminals}"
        )
    loads: dict[tuple[int, int], float] = {
        (spec.src_router, spec.src_port): 0.0 for spec in topology.links()
    }
    for src in range(topology.num_terminals):
        dist = pattern.distribution(src)
        if dist is None:
            raise ValueError(
                f"pattern {pattern.name!r} does not expose an exact "
                "destination distribution"
            )
        for dst, weight in dist.items():
            if weight <= 0.0:
                continue
            router = topology.router_of(src)[0]
            guard = 0
            while True:
                port = topology.route(router, dst)
                if topology.is_local_port(port):
                    break
                loads[(router, port)] += weight
                router = topology.neighbor(router, port)[0]
                guard += 1
                if guard > topology.num_routers:
                    raise RuntimeError("routing loop while accumulating loads")
    return ChannelLoadAnalysis(
        topology=topology.name, pattern=pattern.name, loads=loads
    )


def saturation_bound(topology: Topology, pattern: TrafficPattern) -> float:
    """Shortcut for ``channel_loads(...).saturation_bound``."""
    return channel_loads(topology, pattern).saturation_bound
