"""Analytic network analysis: exact channel loads and saturation bounds."""

from .bounds import ChannelLoadAnalysis, channel_loads, saturation_bound

__all__ = ["ChannelLoadAnalysis", "channel_loads", "saturation_bound"]
