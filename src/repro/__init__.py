"""repro — reproduction of "VIX: Virtual Input Crossbar for Efficient
Switch Allocation" (DAC 2014).

Public API highlights:

* :func:`repro.core.make_allocator` — IF / WF / AP / PC / VIX allocators;
* :func:`repro.network.paper_config` — the paper's network configurations;
* :func:`repro.sim.run_simulation` — warmup/measure/drain network runs;
* :class:`repro.sim.SingleRouterExperiment` — Fig. 7 testbench;
* :mod:`repro.timing` / :mod:`repro.energy` — calibrated circuit models;
* :mod:`repro.manycore` — the 64-core application-level substrate;
* :mod:`repro.parallel` — process fan-out + result caching for the above;
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro.core import (
    AugmentingPathAllocator,
    IdealVIXAllocator,
    PacketChainingAllocator,
    SeparableInputFirstAllocator,
    VIXAllocator,
    WavefrontAllocator,
    make_allocator,
)
from repro.network import Network, NetworkConfig, RouterConfig, paper_config
from repro.parallel import ParallelRunner, ResultCache, SimJob, run_sim_jobs
from repro.sim import (
    Simulation,
    SimulationResult,
    SingleRouterExperiment,
    run_simulation,
    saturation_throughput,
)
from repro.analysis import channel_loads, saturation_bound
from repro.topology import make_topology
from repro.traffic import TrafficInjector, make_pattern

# 1.2.0: cache-key layout change — pattern-attribute canonicalization now
# handles nested containers deterministically, and jobs are derived from
# the declarative experiment-spec layer.  The version is folded into every
# SimJob.key(), so all pre-1.2 cache entries are invalidated wholesale.
__version__ = "1.5.0"

__all__ = [
    "AugmentingPathAllocator",
    "IdealVIXAllocator",
    "Network",
    "NetworkConfig",
    "PacketChainingAllocator",
    "ParallelRunner",
    "ResultCache",
    "RouterConfig",
    "SeparableInputFirstAllocator",
    "SimJob",
    "Simulation",
    "SimulationResult",
    "SingleRouterExperiment",
    "TrafficInjector",
    "VIXAllocator",
    "WavefrontAllocator",
    "__version__",
    "channel_loads",
    "make_allocator",
    "make_pattern",
    "make_topology",
    "paper_config",
    "run_sim_jobs",
    "run_simulation",
    "saturation_bound",
    "saturation_throughput",
]
