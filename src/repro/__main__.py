"""``python -m repro`` — alias for the ``vix-repro`` command line."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
