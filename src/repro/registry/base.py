"""Typed scheme registration and lookup.

A :class:`Registry` is an ordered name -> :class:`SchemeInfo` table for one
*kind* of pluggable object (switch allocators, VC policies, topologies,
traffic patterns, experiment drivers).  Providing packages register their
schemes at import time; consumers resolve names (and aliases) through the
registry instead of hand-rolled ``if name == ...`` dispatch, so adding a
scheme means registering one object in one place.

Registries are lazily populated: each one knows the module that provides
its entries and imports it on first lookup, which keeps this module free of
heavyweight imports (and import cycles) while letting light consumers such
as :mod:`repro.network.config` depend on it at module scope.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Capability flag: the scheme drives an enlarged (``kP x P``) crossbar.
ENLARGES_CROSSBAR = "enlarges_crossbar"
#: Capability flag: one crossbar virtual input per VC (the ideal limit).
VIRTUAL_INPUT_PER_VC = "virtual_input_per_vc"
#: Curation flag: member of the paper's canonical network-level
#: comparison set (Figures 8-10), in registration order.
NETWORK_COMPARISON = "network_comparison"


class UnknownSchemeError(ValueError, KeyError):
    """An unregistered scheme name was requested.

    Subclasses both :class:`ValueError` and :class:`KeyError` so it slots
    into every pre-registry call site: the ``make_*`` factories historically
    raised ``ValueError`` while the experiment table raised ``KeyError``.
    """

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class SchemeInfo:
    """One registered scheme: identity, constructor, and capabilities."""

    #: Canonical name (the registry key).
    name: str
    #: Constructor (or arbitrary payload, e.g. a driver module).
    factory: Callable[..., Any] | Any
    #: The kind of registry this entry belongs to ("allocator", ...).
    kind: str = ""
    #: Accepted alternative spellings, resolved to :attr:`name`.
    aliases: tuple[str, ...] = ()
    #: Short display label for tables and figures (e.g. ``"IF"``).
    label: str = ""
    #: Where the scheme comes from in the paper (figure/section/reference).
    provenance: str = ""
    #: Capability flags (see the module-level flag constants).
    flags: frozenset[str] = field(default_factory=frozenset)

    @property
    def enlarges_crossbar(self) -> bool:
        """True for schemes that need a wider-than-``P x P`` crossbar."""
        return ENLARGES_CROSSBAR in self.flags

    def effective_virtual_inputs(self, requested: int, num_vcs: int) -> int:
        """Crossbar inputs per port this scheme actually drives.

        Conventional schemes always present one input per port; capped
        virtual-input schemes (1:k VIX) present ``min(requested, num_vcs)``;
        per-VC schemes (ideal VIX) present one per VC.
        """
        if VIRTUAL_INPUT_PER_VC in self.flags:
            return num_vcs
        if ENLARGES_CROSSBAR in self.flags:
            return min(requested, num_vcs)
        return 1

    def create(self, *args: Any, **kwargs: Any) -> Any:
        """Invoke the factory."""
        return self.factory(*args, **kwargs)


class Registry:
    """Ordered name -> :class:`SchemeInfo` table for one kind of scheme."""

    def __init__(self, kind: str, *, provider: str | None = None) -> None:
        self.kind = kind
        self._provider = provider
        self._loaded = provider is None
        self._by_name: dict[str, SchemeInfo] = {}
        self._aliases: dict[str, str] = {}

    # --- registration ------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Callable[..., Any] | Any,
        *,
        aliases: tuple[str, ...] = (),
        label: str = "",
        provenance: str = "",
        flags: tuple[str, ...] | frozenset[str] = (),
    ) -> SchemeInfo:
        """Register one scheme; duplicate names or aliases are errors."""
        key = name.strip().lower()
        if key in self._by_name or key in self._aliases:
            raise ValueError(f"{self.kind} {key!r} is already registered")
        info = SchemeInfo(
            name=key,
            factory=factory,
            kind=self.kind,
            aliases=tuple(a.strip().lower() for a in aliases),
            label=label or key,
            provenance=provenance,
            flags=frozenset(flags),
        )
        for alias in info.aliases:
            if alias in self._by_name or alias in self._aliases:
                raise ValueError(
                    f"{self.kind} alias {alias!r} is already registered"
                )
        self._by_name[key] = info
        for alias in info.aliases:
            self._aliases[alias] = key
        return info

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            # Mark first: the provider module itself may consult the
            # registry while registering.
            self._loaded = True
            importlib.import_module(self._provider)  # type: ignore[arg-type]

    # --- lookup ------------------------------------------------------------

    def canonical(self, name: str) -> str:
        """Resolve a name or alias to its canonical form (or raise)."""
        self._ensure_loaded()
        key = name.strip().lower() if isinstance(name, str) else name
        key = self._aliases.get(key, key)
        if key not in self._by_name:
            raise UnknownSchemeError(
                f"unknown {self.kind} {name!r}; expected one of "
                f"{self.names()} (or aliases {sorted(self._aliases)})"
            )
        return key

    def get(self, name: str) -> SchemeInfo:
        """The :class:`SchemeInfo` registered under ``name`` (or an alias)."""
        return self._by_name[self.canonical(name)]

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Build an instance of the scheme registered under ``name``."""
        return self.get(name).create(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        """Every canonical name, in registration order."""
        self._ensure_loaded()
        return tuple(self._by_name)

    def infos(self) -> tuple[SchemeInfo, ...]:
        """Every entry, in registration order."""
        self._ensure_loaded()
        return tuple(self._by_name.values())

    def aliases(self) -> dict[str, str]:
        """Alias -> canonical name mapping."""
        self._ensure_loaded()
        return dict(self._aliases)

    def select(
        self,
        names: tuple[str, ...] | list[str] | None = None,
        *,
        flag: str | None = None,
    ) -> tuple[str, ...]:
        """Canonical names filtered by ``names`` and/or ``flag``.

        The result always follows registration order — the single canonical
        ordering every table and figure shares — regardless of the order
        ``names`` was written in.
        """
        self._ensure_loaded()
        wanted = None if names is None else {self.canonical(n) for n in names}
        return tuple(
            info.name
            for info in self._by_name.values()
            if (wanted is None or info.name in wanted)
            and (flag is None or flag in info.flags)
        )

    def labels(
        self, names: tuple[str, ...] | list[str] | None = None
    ) -> dict[str, str]:
        """Canonical name -> display label, optionally restricted."""
        return {n: self._by_name[n].label for n in self.select(names)}

    def __contains__(self, name: object) -> bool:
        try:
            self.canonical(name)  # type: ignore[arg-type]
        except (UnknownSchemeError, AttributeError):
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._by_name)

    def __repr__(self) -> str:
        status = self.names() if self._loaded else f"<unloaded: {self._provider}>"
        return f"Registry({self.kind!r}, {status})"
