"""Central scheme registries: one registration point per pluggable axis.

Every stringly-selected object family in the reproduction resolves through
one of the registries below:

* :data:`allocators` — switch-allocation schemes (:mod:`repro.core`);
* :data:`vc_policies` — output-VC assignment policies (:mod:`repro.core.vc_policy`);
* :data:`topologies` — network topologies (:mod:`repro.topology`);
* :data:`patterns` — synthetic traffic patterns (:mod:`repro.traffic.patterns`);
* :data:`experiments` — table/figure drivers (:mod:`repro.experiments`);
* :data:`engines` — simulation engine backends (:mod:`repro.sim.engines`);
* :data:`partitioners` — topology-to-chiplet-domain partition schemes
  (:mod:`repro.topology.partition`);
* :data:`links` — inter-chip link models joining partitioned domains
  (:mod:`repro.network.links`).

Each registry lazily imports its providing module on first lookup, so this
package stays import-light (stdlib only) and cycle-free: providers import
:mod:`repro.registry` to register themselves, never the other way around.

Adding a scheme is one ``register`` call in the providing module — the
registry then feeds name canonicalization, constructor dispatch, display
labels, capability flags (e.g. whether a scheme enlarges the crossbar),
the CLI ``list`` output, and the declarative experiment-spec layer, with
no per-driver edits.
"""

from __future__ import annotations

from .base import (
    ENLARGES_CROSSBAR,
    NETWORK_COMPARISON,
    VIRTUAL_INPUT_PER_VC,
    Registry,
    SchemeInfo,
    UnknownSchemeError,
)

#: Switch-allocation schemes (IF / OF / WF / AP / PC / SPAROFLO / VIX / ideal).
allocators = Registry("allocator", provider="repro.core")
#: Output virtual-channel assignment policies.
vc_policies = Registry("VC policy", provider="repro.core.vc_policy")
#: Network topologies (64-terminal paper configurations and scalings).
topologies = Registry("topology", provider="repro.topology")
#: Synthetic traffic patterns.
patterns = Registry("traffic pattern", provider="repro.traffic.patterns")
#: Experiment drivers (one per paper table/figure plus extensions).
experiments = Registry("experiment", provider="repro.experiments")
#: Simulation engine backends (dense / gated object stepping, numpy SoA).
engines = Registry("engine", provider="repro.sim.engines")
#: Partition schemes cutting a topology into chiplet simulation domains.
partitioners = Registry("partitioner", provider="repro.topology.partition")
#: Inter-chip link models (latency/width/credit behaviour at domain cuts).
links = Registry("link", provider="repro.network.links")

#: Every registry, for ``list`` output and completeness checks.
ALL_REGISTRIES: tuple[Registry, ...] = (
    allocators,
    vc_policies,
    topologies,
    patterns,
    experiments,
    engines,
    partitioners,
    links,
)

__all__ = [
    "ALL_REGISTRIES",
    "ENLARGES_CROSSBAR",
    "NETWORK_COMPARISON",
    "Registry",
    "SchemeInfo",
    "UnknownSchemeError",
    "VIRTUAL_INPUT_PER_VC",
    "allocators",
    "engines",
    "experiments",
    "links",
    "partitioners",
    "patterns",
    "topologies",
    "vc_policies",
]
