"""Network energy modelling: activity counters and per-component models."""

from .activity import ActivityCounters
from .energy_model import EnergyBreakdown, EnergyModel, EnergyParams

__all__ = ["ActivityCounters", "EnergyBreakdown", "EnergyModel", "EnergyParams"]
