"""Network energy model (paper Section 4.5, Figure 11).

The paper models links, buffers and switches in SPICE (45 nm), including
clocking and leakage, and folds in activity factors from cycle-accurate
simulation.  We substitute per-event energy constants representative of a
45 nm NoC datapath (documented below) and the same activity-factor
integration.  What Figure 11 establishes — and what the constants are
calibrated to preserve — is the *component breakdown shape* and the ~4%
total energy/bit overhead VIX pays for its larger crossbar at an injection
rate of 0.1 packets/cycle/node.

Component models (``flit`` = 128 bits):

* buffer write / read: fixed pJ per flit (SRAM-style FIFO access);
* crossbar traversal: proportional to the total wire span, i.e. to
  ``rows + cols`` of the ``kP x P`` matrix crossbar — a 1:2 VIX mesh
  crossbar (10x5) costs 1.5x the baseline (5x5) per traversal;
* link traversal: fixed pJ per flit per hop (~1 mm inter-router wire);
* clock: per router per cycle, growing with the clocked VC state;
* leakage: per router per cycle, growing with buffer storage and crossbar
  area (``rows * cols``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .activity import ActivityCounters


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy constants in pJ (128-bit flit, 45 nm class)."""

    #: pJ per flit written into an input buffer.
    buffer_write_pj: float = 1.5
    #: pJ per flit read from an input buffer.
    buffer_read_pj: float = 1.2
    #: pJ per flit crossbar traversal, per unit of (rows + cols) wire span.
    xbar_pj_per_span: float = 0.065
    #: pJ per flit link traversal.
    link_pj: float = 2.6
    #: Clock tree energy per router per cycle: base + per-VC flop cost.
    clock_base_pj: float = 0.9
    clock_per_vc_pj: float = 0.02
    #: Leakage per router per cycle: base + per buffered flit-slot +
    #: per crossbar crosspoint.
    leak_base_pj: float = 0.5
    leak_per_buffer_flit_pj: float = 0.01
    leak_per_crosspoint_pj: float = 0.002


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy totals (pJ) by component for one simulation."""

    buffer: float
    crossbar: float
    link: float
    clock: float
    leakage: float
    bits_delivered: int

    @property
    def total(self) -> float:
        return self.buffer + self.crossbar + self.link + self.clock + self.leakage

    @property
    def per_bit(self) -> float:
        """Total network energy per delivered bit (pJ/bit) — Figure 11's axis."""
        if self.bits_delivered == 0:
            raise ValueError("no bits delivered; energy/bit undefined")
        return self.total / self.bits_delivered

    def per_bit_components(self) -> dict[str, float]:
        """Per-component energy per delivered bit (pJ/bit)."""
        if self.bits_delivered == 0:
            raise ValueError("no bits delivered; energy/bit undefined")
        b = self.bits_delivered
        return {
            "buffer": self.buffer / b,
            "crossbar": self.crossbar / b,
            "link": self.link / b,
            "clock": self.clock / b,
            "leakage": self.leakage / b,
        }


class EnergyModel:
    """Energy accounting for one homogeneous network configuration."""

    def __init__(
        self,
        *,
        radix: int,
        num_vcs: int,
        buffer_depth: int,
        virtual_inputs: int = 1,
        num_routers: int = 64,
        flit_width_bits: int = 128,
        params: EnergyParams | None = None,
    ) -> None:
        if min(radix, num_vcs, buffer_depth, virtual_inputs, num_routers) < 1:
            raise ValueError("all structural parameters must be >= 1")
        self.radix = radix
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.virtual_inputs = virtual_inputs
        self.num_routers = num_routers
        self.flit_width_bits = flit_width_bits
        self.params = params or EnergyParams()

    @property
    def crossbar_rows(self) -> int:
        return self.radix * self.virtual_inputs

    @property
    def crossbar_cols(self) -> int:
        return self.radix

    @property
    def xbar_traversal_pj(self) -> float:
        """Energy of one flit crossing this configuration's crossbar."""
        return self.params.xbar_pj_per_span * (self.crossbar_rows + self.crossbar_cols)

    def _clock_pj_per_router_cycle(self) -> float:
        p = self.params
        return p.clock_base_pj + p.clock_per_vc_pj * self.radix * self.num_vcs

    def _leak_pj_per_router_cycle(self) -> float:
        p = self.params
        buffer_slots = self.radix * self.num_vcs * self.buffer_depth
        crosspoints = self.crossbar_rows * self.crossbar_cols
        return (
            p.leak_base_pj
            + p.leak_per_buffer_flit_pj * buffer_slots
            + p.leak_per_crosspoint_pj * crosspoints
        )

    def evaluate(self, counters: ActivityCounters) -> EnergyBreakdown:
        """Fold simulation activity into the component energy totals."""
        p = self.params
        router_cycles = counters.cycles * self.num_routers
        return EnergyBreakdown(
            buffer=(
                counters.buffer_writes * p.buffer_write_pj
                + counters.buffer_reads * p.buffer_read_pj
            ),
            crossbar=counters.xbar_traversals * self.xbar_traversal_pj,
            link=counters.link_traversals * p.link_pj,
            clock=router_cycles * self._clock_pj_per_router_cycle(),
            leakage=router_cycles * self._leak_pj_per_router_cycle(),
            bits_delivered=counters.flits_ejected * self.flit_width_bits,
        )
