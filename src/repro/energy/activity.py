"""Activity counters collected from cycle-accurate simulation.

The paper's energy methodology (Section 3): "The activity factor of links,
buffers and switches were collected from cycle-accurate simulations and
integrated with component models to determine the overall network energy
consumption."  The network increments these counters as it moves flits; the
energy model multiplies them by per-event energy constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ActivityCounters:
    """Per-simulation event counts for the energy model."""

    #: Flits written into router input buffers.
    buffer_writes: int = 0
    #: Flits read out of router input buffers (switch traversals start here).
    buffer_reads: int = 0
    #: Flits that crossed a crossbar.
    xbar_traversals: int = 0
    #: Flits that crossed an inter-router link.
    link_traversals: int = 0
    #: Flits delivered to destination NIs.
    flits_ejected: int = 0
    #: Packets delivered (tail flits ejected).
    packets_ejected: int = 0
    #: Simulated cycles (fast-forwarded cycles included).
    cycles: int = 0
    #: Sleeping routers moved to the active set (idle-to-busy transitions).
    router_wakeups: int = 0
    #: Cycles the engine fast-forwarded instead of stepping (subset of
    #: ``cycles``; they contribute static energy but no activity).
    cycles_skipped: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.xbar_traversals = 0
        self.link_traversals = 0
        self.flits_ejected = 0
        self.packets_ejected = 0
        self.cycles = 0
        self.router_wakeups = 0
        self.cycles_skipped = 0

    def snapshot(self) -> dict[str, int]:
        """Counter values as a plain dict (for reports and tests)."""
        return {
            "buffer_writes": self.buffer_writes,
            "buffer_reads": self.buffer_reads,
            "xbar_traversals": self.xbar_traversals,
            "link_traversals": self.link_traversals,
            "flits_ejected": self.flits_ejected,
            "packets_ejected": self.packets_ejected,
            "cycles": self.cycles,
            "router_wakeups": self.router_wakeups,
            "cycles_skipped": self.cycles_skipped,
        }
