"""Checkpoint journal: a JSONL record of per-job sweep progress.

:class:`RunJournal` is the crash/interrupt checkpoint for one sweep: every
job state transition appends one JSON line ``{"job_key", "status",
"attempt", "seconds"}``, so a driver killed mid-run (SIGINT, OOM, a lost
machine) can be relaunched with ``--resume`` and skip the jobs already
recorded ``completed``.  The journal records *progress*; the result
*data* lives in the :class:`~repro.parallel.cache.ResultCache`, which the
runner now writes through as each job lands — together they make an
interrupted sweep lose only its in-flight jobs.

Journals live next to the cache (``<cache root>/journals/<run key>.jsonl``,
one file per :meth:`~repro.experiments.spec.ExperimentSpec.content_key`)
and share its durability contract: filesystem errors degrade to "no
journal" rather than failing the sweep, and a line torn by a crash is
skipped on load rather than poisoning the resume.

Statuses written by the runner:

* ``completed`` — the job finished and its result was persisted;
* ``resumed`` — a resume run skipped the job (journaled complete and
  present in the cache);
* ``timeout`` / ``crash`` / ``error`` — one attempt failed that way;
* ``retry`` — the job was requeued after a failed attempt;
* ``failed`` — the job exhausted its retry budget.
"""

from __future__ import annotations

import json
from pathlib import Path

from .cache import default_cache_dir

#: Journal statuses that mark a job as done for resume purposes.
COMPLETED_STATUSES = ("completed", "resumed")


def journal_dir() -> Path:
    """Directory holding run journals (next to the result cache)."""
    return default_cache_dir() / "journals"


def journal_path(run_key: str) -> Path:
    """On-disk journal location for one run (spec content key)."""
    return journal_dir() / f"{run_key}.jsonl"


class RunJournal:
    """Append-only JSONL journal of per-job execution status."""

    def __init__(self, path: str | Path, *, fresh: bool = False) -> None:
        self.path = Path(path)
        if fresh:
            try:
                self.path.unlink()
            except OSError:
                pass

    def record(
        self,
        job_key: str,
        status: str,
        *,
        attempt: int = 0,
        seconds: float = 0.0,
    ) -> None:
        """Append one status line.

        Errors are swallowed: the journal accelerates resume, it is never
        a dependency (same contract as the result cache).  Each append is
        a single short write, so concurrent processes stay line-valid.
        """
        line = json.dumps(
            {
                "job_key": job_key,
                "status": status,
                "attempt": attempt,
                "seconds": round(seconds, 6),
            },
            sort_keys=True,
        )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
        except OSError:
            pass

    @staticmethod
    def load(path: str | Path) -> list[dict]:
        """Every well-formed entry of ``path``, in write order.

        A missing file is an empty journal; malformed lines (e.g. torn by
        the crash being resumed from) are skipped.
        """
        try:
            raw = Path(path).read_text()
        except OSError:
            return []
        entries = []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and isinstance(entry.get("job_key"), str):
                entries.append(entry)
        return entries

    @classmethod
    def completed_keys(cls, path: str | Path) -> frozenset[str]:
        """Job keys recorded complete in ``path`` (resume skip set).

        ``resumed`` counts as complete so resuming twice in a row keeps
        the full skip set.
        """
        return frozenset(
            entry["job_key"]
            for entry in cls.load(path)
            if entry.get("status") in COMPLETED_STATUSES
        )
