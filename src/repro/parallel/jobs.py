"""The unit of parallel work: one fully specified simulation run.

A :class:`SimJob` captures everything :func:`repro.sim.engine.run_simulation`
needs, in a frozen (hashable) dataclass whose fields are all picklable, so
jobs can cross a process boundary and serve as dictionary keys.  Its
:meth:`SimJob.key` is a stable content hash over the *semantic* spec (config
fields, pattern identity, windows, seed) plus the package version — the
address of the job's result in the on-disk cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.network.config import NetworkConfig
from repro.network.links import PartitionConfig
from repro.traffic.patterns import TrafficPattern

if TYPE_CHECKING:  # imported lazily at runtime: repro.sim imports us back
    from repro.sim.engine import SimulationResult


def _canonical_value(value: object) -> object:
    """Deterministic, JSON-able form of one pattern attribute value.

    Scalars pass through; tuples/lists recurse into lists; sets and dicts —
    whose iteration order is not part of their identity — are rewritten as
    *sorted*, tagged pair lists so two equal values always serialize to the
    same bytes regardless of construction order.  Raises :class:`TypeError`
    for anything without a canonical form (callers skip such attributes).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted((_canonical_value(v) for v in value), key=repr)}
    if isinstance(value, dict):
        return {
            "__dict__": sorted(
                (
                    [_canonical_value(k), _canonical_value(v)]
                    for k, v in value.items()
                ),
                key=repr,
            )
        }
    raise TypeError(f"no canonical form for {type(value).__name__}")


def _pattern_spec(pattern: TrafficPattern | str) -> dict:
    """A JSON-able identity for a traffic pattern.

    String specs name a :func:`repro.traffic.patterns.make_pattern` pattern;
    pattern instances contribute their class, size, and public constructor
    state.  Attribute values canonicalize recursively (nested tuples, dicts,
    and sets serialize deterministically); attributes without a canonical
    form — helper objects, not constructor state — are skipped.
    """
    if isinstance(pattern, str):
        return {"kind": "name", "name": pattern.strip().lower()}
    attrs = {}
    for name, value in sorted(vars(pattern).items()):
        if name.startswith("_"):
            continue
        try:
            attrs[name] = _canonical_value(value)
        except TypeError:
            continue
    return {"kind": "instance", "class": type(pattern).__name__, "attrs": attrs}


@dataclass(frozen=True)
class SimJob:
    """One simulation point, ready to run in any process.

    Field defaults mirror :func:`repro.sim.engine.run_simulation` so a job
    is a faithful stand-in for a direct call.
    """

    config: NetworkConfig
    pattern: TrafficPattern | str = "uniform"
    injection_rate: float = 0.1
    packet_length: int | None = None
    seed: int = 1
    warmup: int = 1000
    measure: int = 3000
    drain_limit: int | None = None
    burst_length: float = 1.0
    fast_injection: bool = False
    engine: str | None = None
    #: Chiplet-domain decomposition (:class:`repro.network.links.
    #: PartitionConfig`); ``None`` = monolithic.  Setting it routes the
    #: job to the ``partitioned`` engine.
    partition: "PartitionConfig | None" = None

    def canonical_engine(self) -> str | None:
        """Registry-canonical engine name (``None`` = environment default)."""
        if self.engine is None:
            return None
        from repro.registry import engines

        return engines.canonical(self.engine)

    def run(self) -> "SimulationResult":
        """Execute the simulation this job describes."""
        from repro.sim.engine import run_simulation

        return run_simulation(
            self.config,
            pattern=self.pattern,
            injection_rate=self.injection_rate,
            packet_length=self.packet_length,
            seed=self.seed,
            warmup=self.warmup,
            measure=self.measure,
            drain_limit=self.drain_limit,
            burst_length=self.burst_length,
            fast_injection=self.fast_injection,
            engine=self.engine,
            partition=self.partition,
        )

    def spec(self) -> dict:
        """The job's semantic content as plain JSON-able data.

        ``engine`` is part of the content (canonicalized, so aliases like
        ``vec`` and ``vectorized`` share a key): engines are byte-identical
        by contract, but keying results per engine keeps the cache able to
        *prove* that — a stale entry can never mask an engine divergence.
        """
        return {
            "config": dataclasses.asdict(self.config),
            "pattern": _pattern_spec(self.pattern),
            "injection_rate": self.injection_rate,
            "packet_length": self.packet_length,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "drain_limit": self.drain_limit,
            "burst_length": self.burst_length,
            "fast_injection": self.fast_injection,
            "engine": self.canonical_engine(),
            # PartitionConfig.spec() excludes ``workers`` (an execution
            # choice, not semantic content — results are identical for
            # any worker count), so serial and parallel runs share a key.
            "partition": self.partition.spec() if self.partition is not None else None,
        }

    def key(self) -> str:
        """Stable content hash of the spec + package version (cache address).

        The package version is folded in so simulator behaviour changes
        invalidate old cache entries wholesale.
        """
        from repro import __version__

        payload = json.dumps(
            {"spec": self.spec(), "version": __version__},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()
