"""Deterministic fault injection for the parallel layer.

Faults are enabled through the environment so they reach worker processes
with no API plumbing (the same transport the observability layer uses):

``REPRO_FAULTS``
    Comma-separated directives ``<kind>@<index>[x<count>]``:

    * ``kind`` — ``raise`` (raise :class:`FaultInjected`), ``hang``
      (sleep ``$REPRO_FAULT_HANG_SECONDS`` before running the job, i.e. a
      hung worker that *would* eventually finish if nobody killed it), or
      ``exit`` (``os._exit(86)``: an instant worker death that skips all
      cleanup, the worst-case crash);
    * ``index`` — 0-based position of the job in the executed batch (for
      cached runs: its position among the cache misses);
    * ``count`` — how many *attempts* fault (default 1, so the first retry
      succeeds; ``x*`` faults every attempt and the job exhausts its
      retries).

``REPRO_FAULT_HANG_SECONDS``
    Hang duration in seconds (default 300 — far beyond any sane per-job
    ``timeout=``, so an unkilled hang is loudly visible).

Examples: ``REPRO_FAULTS="exit@1,hang@2"`` crashes the second job's first
attempt and hangs the third job's first attempt; ``REPRO_FAULTS="raise@0x*"``
makes job 0 fail deterministically until its retries are exhausted.

The hook is consulted by the worker entry point
(:func:`repro.parallel.runner._run_batch`) before every attempt of every
job, inline and in workers alike; with ``REPRO_FAULTS`` unset the probe is
a single dict lookup.  This module exists for the fault-tolerance test
suite and the CI fault smoke job — production sweeps never set these
variables.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache

FAULTS_ENV = "REPRO_FAULTS"
HANG_SECONDS_ENV = "REPRO_FAULT_HANG_SECONDS"

#: Exit status of an ``exit`` fault — distinctive in worker post-mortems.
FAULT_EXIT_CODE = 86

_DEFAULT_HANG_SECONDS = 300.0


class FaultInjected(RuntimeError):
    """The deterministic failure raised by a ``raise`` fault directive."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``kind@index[xcount]`` directive."""

    kind: str
    index: int
    #: Number of attempts that fault (``None`` = every attempt).
    attempts: int | None = 1

    def matches(self, index: int, attempt: int) -> bool:
        """True when the fault fires for ``index`` at 0-based ``attempt``."""
        if index != self.index:
            return False
        return self.attempts is None or attempt < self.attempts


@lru_cache(maxsize=16)
def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``$REPRO_FAULTS`` directive string (cached per value)."""
    specs = []
    for part in text.split(","):
        part = part.strip().lower()
        if not part:
            continue
        kind, _, rest = part.partition("@")
        index_text, _, count_text = rest.partition("x")
        try:
            if kind not in ("raise", "hang", "exit"):
                raise ValueError(f"unknown fault kind {kind!r}")
            index = int(index_text)
            attempts: int | None = 1
            if count_text == "*":
                attempts = None
            elif count_text:
                attempts = int(count_text)
        except ValueError:
            raise ValueError(
                f"invalid ${FAULTS_ENV} directive {part!r}: expected "
                "kind@index or kind@indexxcount (count = attempts that "
                "fault, '*' = all) with kind one of raise|hang|exit"
            ) from None
        if index < 0:
            raise ValueError(f"fault index must be >= 0, got {index}")
        if attempts is not None and attempts < 1:
            raise ValueError(f"fault count must be >= 1, got {attempts}")
        specs.append(FaultSpec(kind, index, attempts))
    return tuple(specs)


def hang_seconds() -> float:
    """How long a ``hang`` fault sleeps (``$REPRO_FAULT_HANG_SECONDS``)."""
    text = os.environ.get(HANG_SECONDS_ENV, "").strip()
    return float(text) if text else _DEFAULT_HANG_SECONDS


def inject_fault(index: int, attempt: int) -> None:
    """Fire any matching fault for job ``index`` at 0-based ``attempt``.

    No-op (one environment lookup) unless ``$REPRO_FAULTS`` is set.
    """
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        return
    for spec in parse_faults(text):
        if not spec.matches(index, attempt):
            continue
        if spec.kind == "raise":
            raise FaultInjected(
                f"injected failure for job {index} (attempt {attempt})"
            )
        if spec.kind == "hang":
            # Sleep *then* fall through to run the job: an unkilled hung
            # worker eventually completes — exactly the zombie double
            # execution the runner's cancellation must prevent.
            time.sleep(hang_seconds())
        elif spec.kind == "exit":
            os._exit(FAULT_EXIT_CODE)
