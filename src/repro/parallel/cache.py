"""Content-addressed on-disk cache for simulation results.

Entries are JSON documents, one file per job key, sharded by the first two
hex digits of the key.  The root directory is ``$REPRO_CACHE_DIR`` when set,
else ``~/.cache/repro``; ``$REPRO_NO_CACHE=1`` disables the default cache
entirely.  Corrupt or unreadable entries behave as misses (and are removed),
and every filesystem error degrades to "no cache" rather than failing the
experiment — the cache is an accelerator, never a dependency.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily at runtime: repro.sim imports us back
    from repro.sim.engine import SimulationResult

_ENVELOPE_VERSION = 1


def result_to_jsonable(result: SimulationResult) -> dict:
    """Flatten a :class:`SimulationResult` into JSON-able data."""
    return {
        "allocator": result.allocator,
        "topology": result.topology,
        "injection_rate": result.injection_rate,
        "packet_length": result.packet_length,
        "avg_latency": result.avg_latency,
        "throughput_flits": result.throughput_flits,
        "throughput_packets_per_node": result.throughput_packets_per_node,
        "fairness": result.fairness,
        "packets_created": result.packets_created,
        "packets_ejected": result.packets_ejected,
        "drained": result.drained,
        "cycles": result.cycles,
        "per_source_ejected": list(result.per_source_ejected),
        "counters": dict(result.counters),
        "latency_p50": result.latency_p50,
        "latency_p95": result.latency_p95,
        "latency_p99": result.latency_p99,
        "metrics": result.metrics,
    }


def result_from_jsonable(data: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` written by
    :func:`result_to_jsonable`.  Raises on malformed data (callers treat
    that as a corrupt cache entry)."""
    from repro.sim.engine import SimulationResult

    return SimulationResult(
        allocator=data["allocator"],
        topology=data["topology"],
        injection_rate=data["injection_rate"],
        packet_length=data["packet_length"],
        avg_latency=data["avg_latency"],
        throughput_flits=data["throughput_flits"],
        throughput_packets_per_node=data["throughput_packets_per_node"],
        fairness=data["fairness"],
        packets_created=data["packets_created"],
        packets_ejected=data["packets_ejected"],
        drained=data["drained"],
        cycles=data["cycles"],
        per_source_ejected=list(data["per_source_ejected"]),
        counters={str(k): int(v) for k, v in data["counters"].items()},
        latency_p50=data.get("latency_p50", math.nan),
        latency_p95=data.get("latency_p95", math.nan),
        latency_p99=data.get("latency_p99", math.nan),
        metrics=data.get("metrics"),
    )


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def cache_disabled() -> bool:
    """True when the environment opts out of result caching."""
    return os.environ.get("REPRO_NO_CACHE", "").strip() not in ("", "0", "false")


class ResultCache:
    """JSON result store addressed by :meth:`SimJob.key` content hashes."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @classmethod
    def default(cls) -> "ResultCache | None":
        """The environment-configured cache, or ``None`` when disabled."""
        if cache_disabled():
            return None
        return cls()

    def path_for(self, key: str) -> Path:
        """On-disk location of ``key``'s entry."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            document = json.loads(raw)
            if document.get("envelope") != _ENVELOPE_VERSION:
                raise ValueError(f"unknown cache envelope in {path}")
            return result_from_jsonable(document["result"])
        except (ValueError, KeyError, TypeError):
            # Corrupt entry: drop it so the slot can be rewritten cleanly.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (atomically; errors are ignored)."""
        path = self.path_for(key)
        document = {
            "envelope": _ENVELOPE_VERSION,
            "key": key,
            "result": result_to_jsonable(result),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(document, handle, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # Read-only or full filesystem: run uncached rather than fail.
            pass
