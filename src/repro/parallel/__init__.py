"""Process-based experiment execution: job specs, fan-out, result caching.

Every paper artifact is a bag of fully independent cycle-accurate
simulations — one per (allocator, rate, pattern, seed) point.  This package
turns that observation into wall-clock speed:

* :class:`SimJob` — a hashable, picklable description of one simulation
  (config + pattern + rate + seed + windows) with a stable content hash;
* :class:`ParallelRunner` — fans jobs out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunking,
  ``as_completed`` collection, per-job timeouts with genuine cancellation
  (hung workers are killed, not awaited), per-job retry with capped
  exponential backoff, crash-isolating chunk bisection, and an
  ordered-results API, so output is identical to a serial run;
* :class:`ResultCache` — a content-addressed on-disk JSON cache
  (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) keyed by job hash + package
  version, making repeated sweeps and redundant saturation probes free;
* :class:`RunJournal` — a JSONL checkpoint journal next to the cache so an
  interrupted sweep can be relaunched with ``--resume`` and re-execute
  only the jobs not recorded complete;
* :class:`ExecutionStats` — jobs run / cache hits / retries /
  cancellations / resumes / wall seconds, surfaced in experiment table
  footers and the obs metrics registry;
* :mod:`~repro.parallel.faults` — deterministic env-keyed fault injection
  (raise / hang / hard-exit the Nth job) for the fault-tolerance tests
  and the CI fault smoke job.

Serial semantics are the degenerate case: ``jobs=1`` (the default when
``$REPRO_JOBS`` is unset) executes inline, in order, in-process.
"""

from .cache import ResultCache, result_from_jsonable, result_to_jsonable
from .faults import FaultInjected
from .jobs import SimJob
from .journal import RunJournal, journal_path
from .runner import (
    ExecutionStats,
    JobTimeoutError,
    ParallelRunner,
    resolve_jobs,
    run_sim_jobs,
)

__all__ = [
    "ExecutionStats",
    "FaultInjected",
    "JobTimeoutError",
    "ParallelRunner",
    "ResultCache",
    "RunJournal",
    "SimJob",
    "journal_path",
    "resolve_jobs",
    "result_from_jsonable",
    "result_to_jsonable",
    "run_sim_jobs",
]
