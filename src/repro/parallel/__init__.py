"""Process-based experiment execution: job specs, fan-out, result caching.

Every paper artifact is a bag of fully independent cycle-accurate
simulations — one per (allocator, rate, pattern, seed) point.  This package
turns that observation into wall-clock speed:

* :class:`SimJob` — a hashable, picklable description of one simulation
  (config + pattern + rate + seed + windows) with a stable content hash;
* :class:`ParallelRunner` — fans jobs out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunking, per-job
  timeouts, worker-crash retry and an ordered-results API, so output is
  identical to a serial run;
* :class:`ResultCache` — a content-addressed on-disk JSON cache
  (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) keyed by job hash + package
  version, making repeated sweeps and redundant saturation probes free;
* :class:`ExecutionStats` — jobs run / cache hits / worker retries / wall
  seconds, surfaced in experiment table footers.

Serial semantics are the degenerate case: ``jobs=1`` (the default when
``$REPRO_JOBS`` is unset) executes inline, in order, in-process.
"""

from .cache import ResultCache, result_from_jsonable, result_to_jsonable
from .jobs import SimJob
from .runner import ExecutionStats, ParallelRunner, resolve_jobs, run_sim_jobs

__all__ = [
    "ExecutionStats",
    "ParallelRunner",
    "ResultCache",
    "SimJob",
    "resolve_jobs",
    "result_from_jsonable",
    "result_to_jsonable",
    "run_sim_jobs",
]
