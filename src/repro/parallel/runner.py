"""Fan simulation jobs out over worker processes, in order, with a cache.

The runner's contract is *serial equivalence*: ``ParallelRunner.run(jobs)``
returns results in job order with field-for-field the same values a serial
loop would produce — simulations are deterministic from their spec, so the
only thing parallelism changes is the wall clock.  Failure handling keeps
that contract under duress: a failed or crashed worker batch is retried
once in a fresh pool, and whatever still fails is executed inline in the
parent process (with a warning), so a broken multiprocessing stack degrades
to the serial behaviour instead of a crash.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.obs import env_observability_enabled, profiled_call, spans_from_counters

from .cache import ResultCache
from .jobs import SimJob

if TYPE_CHECKING:  # imported lazily at runtime: repro.sim imports us back
    from repro.sim.engine import SimulationResult


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Resolve a worker-count spec to a positive integer.

    ``None`` defers to ``$REPRO_JOBS`` (default 1 — serial); ``"auto"`` or
    any value < 1 means one worker per CPU core.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "1")
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text in ("", "auto"):
            return os.cpu_count() or 1
        jobs = int(text)
    if jobs < 1:
        return os.cpu_count() or 1
    return jobs


@dataclass
class ExecutionStats:
    """Counters describing how a batch of jobs was actually executed."""

    jobs_run: int = 0
    cache_hits: int = 0
    worker_retries: int = 0
    inline_fallbacks: int = 0
    wall_seconds: float = 0.0
    #: Router idle-to-busy transitions across the freshly executed runs
    #: (activity-gated stepping; cached results contribute nothing).
    router_wakeups: int = 0
    #: Cycles fast-forwarded instead of simulated across the fresh runs.
    cycles_skipped: int = 0
    #: Wall time of the slowest single job (cache hits excluded).
    max_job_seconds: float = 0.0
    #: Per-phase (warmup/measure/drain) wall time summed over the fresh
    #: runs; only populated when profiling is on (``REPRO_PROFILE``).
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another stats block into this one."""
        self.jobs_run += other.jobs_run
        self.cache_hits += other.cache_hits
        self.worker_retries += other.worker_retries
        self.inline_fallbacks += other.inline_fallbacks
        self.wall_seconds += other.wall_seconds
        self.router_wakeups += other.router_wakeups
        self.cycles_skipped += other.cycles_skipped
        if other.max_job_seconds > self.max_job_seconds:
            self.max_job_seconds = other.max_job_seconds
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def absorb_counters(self, counters: dict) -> None:
        """Fold one simulation's activity counters into the batch view."""
        self.router_wakeups += counters.get("router_wakeups", 0)
        self.cycles_skipped += counters.get("cycles_skipped", 0)
        for phase, seconds in spans_from_counters(counters).items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def observe_job(self, seconds: float) -> None:
        """Track one freshly executed job's wall time (max across jobs)."""
        if seconds > self.max_job_seconds:
            self.max_job_seconds = seconds

    def as_dict(self) -> dict:
        """Plain-dict view (stable keys; used by JSON export and footers)."""
        data = {
            "jobs_run": self.jobs_run,
            "cache_hits": self.cache_hits,
            "worker_retries": self.worker_retries,
            "inline_fallbacks": self.inline_fallbacks,
            "wall_seconds": round(self.wall_seconds, 3),
            "router_wakeups": self.router_wakeups,
            "cycles_skipped": self.cycles_skipped,
            "max_job_seconds": round(self.max_job_seconds, 3),
        }
        if self.phase_seconds:
            data["phase_seconds"] = {
                phase: round(seconds, 3)
                for phase, seconds in sorted(self.phase_seconds.items())
            }
        return data

    def summary(self) -> str:
        """One-line human-readable form for table footers."""
        line = (
            f"jobs run: {self.jobs_run} | cache hits: {self.cache_hits} | "
            f"worker retries: {self.worker_retries} | "
            f"wall: {self.wall_seconds:.2f}s | "
            f"max job: {self.max_job_seconds:.2f}s | "
            f"router wakeups: {self.router_wakeups} | "
            f"cycles skipped: {self.cycles_skipped}"
        )
        if self.phase_seconds:
            spans = " ".join(
                f"{phase}={seconds:.2f}s"
                for phase, seconds in sorted(self.phase_seconds.items())
            )
            line += f" | phases: {spans}"
        return line


def _run_sim_job(job: SimJob) -> SimulationResult:
    """Module-level worker entry point (must be picklable).

    With ``REPRO_PROFILE_DIR`` set the job runs under ``cProfile`` and
    dumps ``job-<key-prefix>.pstats`` into that directory — one profile
    per simulation, valid in workers and inline alike.
    """
    profile_dir = os.environ.get("REPRO_PROFILE_DIR", "").strip()
    if profile_dir:
        return profiled_call(job.run, profile_dir, f"job-{job.key()[:16]}")
    return job.run()


def _run_batch(fn: Callable, batch: list) -> list:
    """Execute one chunk of items in a worker process.

    Returns ``(value, wall_seconds)`` pairs so the parent can track the
    slowest individual job without a second round trip.
    """
    out = []
    for item in batch:
        start = time.perf_counter()
        value = fn(item)
        out.append((value, time.perf_counter() - start))
    return out


class ParallelRunner:
    """Ordered fan-out of independent jobs over worker processes.

    Parameters
    ----------
    jobs:
        Worker count (see :func:`resolve_jobs`).  1 executes inline.
    cache:
        ``"default"`` for the environment-configured :class:`ResultCache`,
        ``None`` to disable, or an explicit cache instance.  Only
        :meth:`run` (SimJob execution) consults the cache; :meth:`map` is
        for arbitrary callables and always executes.
    timeout:
        Optional per-job seconds budget.  A chunk that exceeds
        ``timeout * len(chunk)`` counts as failed and follows the
        retry-then-inline path.
    chunksize:
        Jobs per worker submission.  1 (the default) gives the best
        load balance for second-scale simulations; raise it for very
        short jobs to amortise pickling overhead.
    """

    def __init__(
        self,
        jobs: int | str | None = None,
        *,
        cache: ResultCache | str | None = "default",
        timeout: float | None = None,
        chunksize: int = 1,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if cache == "default":
            # Observability-enabled runs must execute: a cached result was
            # produced without probes/tracing and carries no metrics.
            cache = None if env_observability_enabled() else ResultCache.default()
        self.cache = cache
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.timeout = timeout
        self.chunksize = chunksize
        self.stats = ExecutionStats()

    # --- SimJob execution (cached) ----------------------------------------

    def run(self, sim_jobs: Sequence[SimJob]) -> list[SimulationResult]:
        """Execute every job, returning results in job order.

        Cache hits are served without running; misses are executed (in
        parallel when ``jobs > 1``) and written back.
        """
        start = time.perf_counter()
        results: list[SimulationResult | None] = [None] * len(sim_jobs)
        miss_indices: list[int] = []
        keys: dict[int, str] = {}
        if self.cache is not None:
            for i, job in enumerate(sim_jobs):
                keys[i] = key = job.key()
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                    self.stats.cache_hits += 1
                else:
                    miss_indices.append(i)
        else:
            miss_indices = list(range(len(sim_jobs)))

        if miss_indices:
            fresh = self._execute(
                _run_sim_job, [sim_jobs[i] for i in miss_indices]
            )
            self.stats.jobs_run += len(miss_indices)
            for i, result in zip(miss_indices, fresh):
                results[i] = result
                self.stats.absorb_counters(result.counters)
                if self.cache is not None:
                    self.cache.put(keys[i], result)
        self.stats.wall_seconds += time.perf_counter() - start
        return results  # type: ignore[return-value] — every slot is filled

    # --- generic execution (uncached) --------------------------------------

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply a picklable callable to every item, preserving order."""
        start = time.perf_counter()
        outputs = self._execute(fn, list(items))
        self.stats.jobs_run += len(items)
        self.stats.wall_seconds += time.perf_counter() - start
        return outputs

    # --- machinery ----------------------------------------------------------

    def _execute(self, fn: Callable, items: list) -> list:
        workers = min(self.jobs, len(items))
        if workers <= 1:
            return self._collect([_run_batch(fn, items)])
        size = self.chunksize
        chunks = [items[i : i + size] for i in range(0, len(items), size)]
        outputs: list[list | None] = [None] * len(chunks)
        pending = list(range(len(chunks)))
        for attempt in (0, 1):
            if not pending:
                break
            if attempt:
                self.stats.worker_retries += len(pending)
            pending = self._try_pool(fn, chunks, outputs, pending, workers)
        if pending:
            # Two pool generations failed (crashing workers, broken
            # multiprocessing, timeouts): degrade to serial execution so
            # the experiment still completes.
            self.stats.inline_fallbacks += len(pending)
            warnings.warn(
                f"parallel execution failed for {len(pending)} job batch(es); "
                "falling back to inline execution",
                RuntimeWarning,
                stacklevel=3,
            )
            for ci in pending:
                outputs[ci] = _run_batch(fn, chunks[ci])
        return self._collect(outputs)  # type: ignore[arg-type]

    def _collect(self, batches: list[list]) -> list:
        """Flatten ``(value, seconds)`` batch outputs, tracking the max."""
        stats = self.stats
        values = []
        for batch in batches:
            for value, seconds in batch:
                stats.observe_job(seconds)
                values.append(value)
        return values

    def _try_pool(
        self,
        fn: Callable,
        chunks: list[list],
        outputs: list,
        pending: list[int],
        workers: int,
    ) -> list[int]:
        """Run the pending chunks in one pool; returns the still-failed ones."""
        failed: list[int] = []
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                submitted = [
                    (ci, pool.submit(_run_batch, fn, chunks[ci])) for ci in pending
                ]
                for ci, future in submitted:
                    budget = (
                        None if self.timeout is None
                        else self.timeout * len(chunks[ci])
                    )
                    try:
                        outputs[ci] = future.result(timeout=budget)
                    except Exception:
                        # Worker crash (BrokenProcessPool), job exception,
                        # or timeout: mark for retry/inline.
                        failed.append(ci)
        except Exception:
            # Pool construction/teardown itself failed.
            return [ci for ci in pending if outputs[ci] is None]
        return failed


def run_sim_jobs(
    sim_jobs: Sequence[SimJob],
    *,
    jobs: int | str | None = None,
    cache: ResultCache | str | None = "default",
    timeout: float | None = None,
    stats: ExecutionStats | None = None,
) -> list[SimulationResult]:
    """One-call fan-out: execute ``sim_jobs`` and return ordered results.

    When ``stats`` is given, the runner's counters are merged into it so
    callers can aggregate across batches.
    """
    runner = ParallelRunner(jobs, cache=cache, timeout=timeout)
    results = runner.run(sim_jobs)
    if stats is not None:
        stats.merge(runner.stats)
    return results
