"""Fan simulation jobs out over worker processes, in order, with a cache.

The runner's contract is *serial equivalence*: ``ParallelRunner.run(jobs)``
returns results in job order with field-for-field the same values a serial
loop would produce — simulations are deterministic from their spec, so the
only thing parallelism changes is the wall clock.  Failure handling keeps
that contract under duress:

* results are collected ``as_completed`` and written back to the cache
  (and the run journal) the moment they land, so a killed sweep keeps
  every completed job;
* a chunk that exceeds its ``timeout`` budget is *genuinely cancelled*:
  the pool's workers are SIGKILLed, so pool shutdown never blocks on a
  hung worker and the timed-out job is never executed twice by a zombie;
* failed jobs are retried per *job* (``max_retries``, capped exponential
  backoff); a failed multi-job chunk is first bisected to fence off the
  one poisoned job instead of failing its chunk-mates;
* whatever still fails after the retry budget is executed inline in the
  parent process (with a warning), so a broken multiprocessing stack
  degrades to the serial behaviour instead of a crash — except jobs that
  *timed out* on every attempt, which raise :class:`JobTimeoutError`
  (re-running a hanging job inline would hang the driver uncancellably).
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Collection, Sequence

from repro.obs import (
    emit_worker_event,
    env_observability_enabled,
    profiled_call,
    spans_from_counters,
)

if TYPE_CHECKING:
    from repro.obs import RunMonitor

from .cache import ResultCache
from .faults import inject_fault
from .jobs import SimJob
from .journal import RunJournal

if TYPE_CHECKING:  # imported lazily at runtime: repro.sim imports us back
    from repro.sim.engine import SimulationResult

#: Ceiling on one retry's backoff sleep, whatever the attempt number.
BACKOFF_CAP_SECONDS = 2.0

#: Poll granularity of the timeout watchdog (seconds).  Budgets are only
#: enforceable to this resolution; it also bounds how stale a freshly
#: started future's deadline assignment can be.
_POLL_TICK = 0.05

#: Poll granularity when only the telemetry monitor needs servicing (no
#: per-job timeout): coarse enough to stay invisible in profiles, fine
#: enough for sub-second progress events.
_MONITOR_TICK = 0.25

_TRUTHY_OFF = ("", "0", "false")

#: The telemetry queue of the current process, when a monitor is active.
#: Set in worker processes by the pool initializer (the queue rides the
#: process-creation channel) and in the coordinator by ``_execute`` so
#: the serial and inline-fallback paths emit through the same channel.
#: ``None`` (the default) keeps ``_run_batch`` on its pre-telemetry path.
_WORKER_EVENT_QUEUE = None


def _init_worker_events(queue) -> None:
    """Pool initializer: adopt the monitor's worker event queue."""
    global _WORKER_EVENT_QUEUE
    _WORKER_EVENT_QUEUE = queue


class JobTimeoutError(TimeoutError):
    """A job exceeded its time budget on every allowed attempt.

    Raised instead of the inline fallback: a job that hangs in workers
    would hang the parent too, with no way left to cancel it.
    """


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Resolve a worker-count spec to a positive integer.

    ``None`` defers to ``$REPRO_JOBS`` (default 1 — serial); ``"auto"`` or
    any value < 1 means one worker per CPU core.
    """
    source = None
    if jobs is None:
        source = "$REPRO_JOBS"
        jobs = os.environ.get("REPRO_JOBS", "1")
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text in ("", "auto"):
            return os.cpu_count() or 1
        try:
            jobs = int(text)
        except ValueError:
            where = f" (from {source})" if source else ""
            raise ValueError(
                f"invalid worker count {text!r}{where}: expected an "
                "integer, 'auto' (one worker per CPU core), or a value "
                "< 1 (also one worker per core)"
            ) from None
    if jobs < 1:
        return os.cpu_count() or 1
    return jobs


def resolve_timeout(timeout: float | None = None) -> float | None:
    """Resolve a per-job timeout: explicit argument beats ``$REPRO_TIMEOUT``.

    ``None`` with the variable unset means no budget.
    """
    if timeout is None:
        text = os.environ.get("REPRO_TIMEOUT", "").strip()
        if not text:
            return None
        try:
            timeout = float(text)
        except ValueError:
            raise ValueError(
                f"invalid $REPRO_TIMEOUT value {text!r}: expected a "
                "per-job budget in seconds"
            ) from None
    if timeout <= 0:
        raise ValueError(f"timeout must be > 0, got {timeout}")
    return timeout


def resolve_max_retries(max_retries: int | None = None) -> int:
    """Resolve the per-job retry budget (``$REPRO_MAX_RETRIES``, default 2)."""
    if max_retries is None:
        text = os.environ.get("REPRO_MAX_RETRIES", "").strip()
        if not text:
            return 2
        try:
            max_retries = int(text)
        except ValueError:
            raise ValueError(
                f"invalid $REPRO_MAX_RETRIES value {text!r}: expected a "
                "non-negative integer"
            ) from None
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    return max_retries


def resolve_backoff(backoff: float | None = None) -> float:
    """Resolve the base retry backoff (``$REPRO_RETRY_BACKOFF``, default 0.05s)."""
    if backoff is None:
        text = os.environ.get("REPRO_RETRY_BACKOFF", "").strip()
        if not text:
            return 0.05
        try:
            backoff = float(text)
        except ValueError:
            raise ValueError(
                f"invalid $REPRO_RETRY_BACKOFF value {text!r}: expected "
                "seconds as a number"
            ) from None
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    return backoff


@dataclass
class ExecutionStats:
    """Counters describing how a batch of jobs was actually executed."""

    jobs_run: int = 0
    cache_hits: int = 0
    worker_retries: int = 0
    inline_fallbacks: int = 0
    wall_seconds: float = 0.0
    #: Hung futures whose workers were SIGKILLed on a ``timeout`` expiry.
    cancellations: int = 0
    #: Jobs skipped on ``--resume`` (journaled complete + served by cache).
    resumed_jobs: int = 0
    #: Failed multi-job chunks split to isolate a poisoned job.
    chunk_bisections: int = 0
    #: Router idle-to-busy transitions across the freshly executed runs
    #: (activity-gated stepping; cached results contribute nothing).
    router_wakeups: int = 0
    #: Cycles fast-forwarded instead of simulated across the fresh runs.
    cycles_skipped: int = 0
    #: Wall time of the slowest single job (cache hits excluded).
    max_job_seconds: float = 0.0
    #: Per-phase (warmup/measure/drain) wall time summed over the fresh
    #: runs; only populated when profiling is on (``REPRO_PROFILE``).
    #: The vectorized engine adds a ``kernel`` phase (array-kernel time),
    #: which is how ``report_metrics.py`` attributes time to the SoA core.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Fresh jobs per resolved engine backend (cache hits excluded).
    engine_jobs: dict[str, int] = field(default_factory=dict)
    #: Cycles executed through the SoA array kernel across the fresh runs
    #: (the vectorized counterpart of ``router_wakeups``; low-load runs
    #: that delegated to the gated engine contribute nothing).
    vec_kernel_cycles: int = 0
    #: Flit-trace events lost to ring-buffer wraps across the fresh runs
    #: (nonzero only with tracing on and ``REPRO_TRACE_BUFFER`` too small
    #: — the signal that the trace file is a truncated view).
    trace_dropped_events: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another stats block into this one."""
        self.jobs_run += other.jobs_run
        self.cache_hits += other.cache_hits
        self.worker_retries += other.worker_retries
        self.inline_fallbacks += other.inline_fallbacks
        self.wall_seconds += other.wall_seconds
        self.cancellations += other.cancellations
        self.resumed_jobs += other.resumed_jobs
        self.chunk_bisections += other.chunk_bisections
        self.router_wakeups += other.router_wakeups
        self.cycles_skipped += other.cycles_skipped
        self.vec_kernel_cycles += other.vec_kernel_cycles
        self.trace_dropped_events += other.trace_dropped_events
        if other.max_job_seconds > self.max_job_seconds:
            self.max_job_seconds = other.max_job_seconds
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        for engine, count in other.engine_jobs.items():
            self.engine_jobs[engine] = self.engine_jobs.get(engine, 0) + count

    def absorb_counters(self, counters: dict, engine: str | None = None) -> None:
        """Fold one simulation's activity counters into the batch view."""
        self.router_wakeups += counters.get("router_wakeups", 0)
        self.cycles_skipped += counters.get("cycles_skipped", 0)
        self.vec_kernel_cycles += counters.get("vec_kernel_cycles", 0)
        self.trace_dropped_events += counters.get("trace_dropped_events", 0)
        if engine is not None:
            self.engine_jobs[engine] = self.engine_jobs.get(engine, 0) + 1
        for phase, seconds in spans_from_counters(counters).items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def observe_job(self, seconds: float) -> None:
        """Track one freshly executed job's wall time (max across jobs)."""
        if seconds > self.max_job_seconds:
            self.max_job_seconds = seconds

    def as_dict(self) -> dict:
        """Plain-dict view (stable keys; used by JSON export and footers)."""
        data = {
            "jobs_run": self.jobs_run,
            "cache_hits": self.cache_hits,
            "worker_retries": self.worker_retries,
            "inline_fallbacks": self.inline_fallbacks,
            "wall_seconds": round(self.wall_seconds, 3),
            "cancellations": self.cancellations,
            "resumed_jobs": self.resumed_jobs,
            "chunk_bisections": self.chunk_bisections,
            "router_wakeups": self.router_wakeups,
            "cycles_skipped": self.cycles_skipped,
            "vec_kernel_cycles": self.vec_kernel_cycles,
            "trace_dropped_events": self.trace_dropped_events,
            "max_job_seconds": round(self.max_job_seconds, 3),
        }
        if self.engine_jobs:
            data["engine_jobs"] = dict(sorted(self.engine_jobs.items()))
        if self.phase_seconds:
            data["phase_seconds"] = {
                phase: round(seconds, 3)
                for phase, seconds in sorted(self.phase_seconds.items())
            }
        return data

    def publish(self, registry) -> None:
        """Publish the batch counters into an obs ``MetricsRegistry``.

        Counter/gauge names are prefixed ``runner_`` so they can never
        collide with simulator-side metrics merged into the same registry.
        """
        registry.counter("runner_jobs_run").inc(self.jobs_run)
        registry.counter("runner_cache_hits").inc(self.cache_hits)
        registry.counter("runner_worker_retries").inc(self.worker_retries)
        registry.counter("runner_inline_fallbacks").inc(self.inline_fallbacks)
        registry.counter("runner_cancellations").inc(self.cancellations)
        registry.counter("runner_resumed_jobs").inc(self.resumed_jobs)
        registry.counter("runner_chunk_bisections").inc(self.chunk_bisections)
        registry.gauge("runner_wall_seconds").set(round(self.wall_seconds, 3))
        registry.gauge("runner_max_job_seconds").set(round(self.max_job_seconds, 3))
        registry.counter("runner_vec_kernel_cycles").inc(self.vec_kernel_cycles)
        registry.counter("runner_trace_dropped_events").inc(self.trace_dropped_events)
        for engine, count in sorted(self.engine_jobs.items()):
            registry.counter(f"runner_engine_jobs_{engine}").inc(count)

    def summary(self) -> str:
        """One-line human-readable form for table footers."""
        line = (
            f"jobs run: {self.jobs_run} | cache hits: {self.cache_hits} | "
            f"worker retries: {self.worker_retries} | "
            f"inline fallbacks: {self.inline_fallbacks} | "
            f"wall: {self.wall_seconds:.2f}s | "
            f"max job: {self.max_job_seconds:.2f}s | "
            f"router wakeups: {self.router_wakeups} | "
            f"cycles skipped: {self.cycles_skipped}"
        )
        if self.cancellations:
            line += f" | cancellations: {self.cancellations}"
        if self.resumed_jobs:
            line += f" | resumed: {self.resumed_jobs}"
        if self.chunk_bisections:
            line += f" | chunk bisections: {self.chunk_bisections}"
        if self.engine_jobs:
            mix = " ".join(
                f"{engine}={count}"
                for engine, count in sorted(self.engine_jobs.items())
            )
            line += f" | engines: {mix}"
        if self.vec_kernel_cycles:
            line += f" | vec kernel cycles: {self.vec_kernel_cycles}"
        if self.trace_dropped_events:
            line += f" | trace dropped events: {self.trace_dropped_events}"
        if self.phase_seconds:
            spans = " ".join(
                f"{phase}={seconds:.2f}s"
                for phase, seconds in sorted(self.phase_seconds.items())
            )
            line += f" | phases: {spans}"
        return line


def _resolved_engine(job: SimJob) -> str:
    """The engine a job actually runs on: its own, or the runtime default."""
    if job.partition is not None:
        # A partition config forces the partitioned engine regardless of
        # the environment default (run_simulation enforces the same).
        return "partitioned"
    name = job.canonical_engine()
    if name is not None:
        return name
    from repro.sim.engines import default_engine

    return default_engine() or "gated"


def _run_sim_job(job: SimJob) -> SimulationResult:
    """Module-level worker entry point (must be picklable).

    With ``REPRO_PROFILE_DIR`` set the job runs under ``cProfile`` and
    dumps ``job-<key-prefix>.pstats`` into that directory — one profile
    per simulation, valid in workers and inline alike.
    """
    profile_dir = os.environ.get("REPRO_PROFILE_DIR", "").strip()
    if profile_dir:
        return profiled_call(job.run, profile_dir, f"job-{job.key()[:16]}")
    return job.run()


def _job_event_data(item, value) -> dict:
    """Telemetry payload extras for one finished job (best-effort)."""
    data: dict = {}
    try:
        if isinstance(item, SimJob):
            data["engine"] = _resolved_engine(item)
            data["key"] = item.key()[:16]
        counters = getattr(value, "counters", None)
        if isinstance(counters, dict):
            spans = spans_from_counters(counters)
            if spans:
                data["spans"] = {
                    phase: round(seconds, 6) for phase, seconds in spans.items()
                }
            if counters.get("vec_kernel_cycles"):
                data["vec_kernel_cycles"] = counters["vec_kernel_cycles"]
            if counters.get("partition_domains"):
                data["partition_domains"] = counters["partition_domains"]
                data["interchip_flits"] = counters.get("interchip_flits", 0)
    except Exception:
        pass  # telemetry decoration must never fail the job
    return data


def _run_batch(fn: Callable, batch: list) -> list:
    """Execute one chunk of ``(job_index, attempt, item)`` triples.

    Returns ``(value, wall_seconds)`` pairs aligned with ``batch`` so the
    parent can track the slowest individual job without a second round
    trip.  With ``$REPRO_FAULTS`` set, the deterministic fault hooks fire
    before each item (see :mod:`repro.parallel.faults`).  With a run
    monitor active, each job brackets itself in ``job_start``/
    ``job_finish`` events on the telemetry queue (best-effort puts that
    can never fail the job).
    """
    queue = _WORKER_EVENT_QUEUE
    out = []
    for index, attempt, item in batch:
        inject_fault(index, attempt)
        if queue is not None:
            emit_worker_event(queue, "job_start", index=index, attempt=attempt)
        start = time.perf_counter()
        value = fn(item)
        seconds = time.perf_counter() - start
        out.append((value, seconds))
        if queue is not None:
            emit_worker_event(
                queue,
                "job_finish",
                index=index,
                attempt=attempt,
                seconds=round(seconds, 6),
                **_job_event_data(item, value),
            )
    return out


def _kill_workers(pool: ProcessPoolExecutor) -> int:
    """SIGKILL every live worker of ``pool`` (genuine hung-job cancellation).

    ``ProcessPoolExecutor`` exposes no public way to cancel a *running*
    call, so this reaches for the executor's process table; the attribute
    is absent only on never-started pools, which have nothing to kill.
    """
    processes = getattr(pool, "_processes", None) or {}
    killed = 0
    for proc in list(processes.values()):
        if proc.is_alive():
            proc.kill()
            killed += 1
    return killed


@dataclass
class _Job:
    """Retry bookkeeping for one item of an ``_execute`` batch."""

    index: int
    item: object
    attempt: int = 0
    timed_out: bool = False
    error: BaseException | None = None


class ParallelRunner:
    """Ordered fan-out of independent jobs over worker processes.

    Parameters
    ----------
    jobs:
        Worker count (see :func:`resolve_jobs`).  1 executes inline.
    cache:
        ``"default"`` for the environment-configured :class:`ResultCache`,
        ``None`` to disable, or an explicit cache instance.  Only
        :meth:`run` (SimJob execution) consults the cache; :meth:`map` is
        for arbitrary callables and always executes.
    timeout:
        Optional per-job seconds budget (default ``$REPRO_TIMEOUT``).  A
        chunk that exceeds ``timeout * len(chunk)`` after starting is
        treated as hung: its pool's workers are killed and the chunk's
        jobs are retried in a fresh pool.
    chunksize:
        Jobs per worker submission.  1 (the default) gives the best
        load balance for second-scale simulations; raise it for very
        short jobs to amortise pickling overhead.  A failed chunk is
        bisected until the poisoned job is isolated.
    max_retries:
        Per-job retry budget after a crash/timeout/exception (default
        ``$REPRO_MAX_RETRIES`` or 2).  Jobs that exhaust it fall back to
        inline execution (timeouts instead raise :class:`JobTimeoutError`).
    backoff:
        Base seconds of the capped exponential retry backoff (default
        ``$REPRO_RETRY_BACKOFF`` or 0.05; attempt ``n`` sleeps
        ``backoff * 2**(n-1)``, capped at :data:`BACKOFF_CAP_SECONDS`).
    journal:
        Optional :class:`~repro.parallel.journal.RunJournal` that
        :meth:`run` records per-job progress into.
    resumed_keys:
        Job keys a previous interrupted run journaled complete; cache
        hits on them count as ``resumed_jobs``.
    monitor:
        Optional :class:`~repro.obs.monitor.RunMonitor` receiving the
        run's streaming telemetry (job/cache/retry lifecycle events from
        the coordinator, ``job_start``/``job_finish`` from the workers).
        ``None`` (the default) executes the exact pre-telemetry paths.
    """

    def __init__(
        self,
        jobs: int | str | None = None,
        *,
        cache: ResultCache | str | None = "default",
        timeout: float | None = None,
        chunksize: int = 1,
        max_retries: int | None = None,
        backoff: float | None = None,
        journal: RunJournal | None = None,
        resumed_keys: Collection[str] = (),
        monitor: "RunMonitor | None" = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if cache == "default":
            # Observability-enabled runs must execute: a cached result was
            # produced without probes/tracing and carries no metrics.
            cache = None if env_observability_enabled() else ResultCache.default()
        self.cache = cache
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.timeout = resolve_timeout(timeout)
        self.chunksize = chunksize
        self.max_retries = resolve_max_retries(max_retries)
        self.backoff = resolve_backoff(backoff)
        self.journal = journal
        self.resumed_keys = frozenset(resumed_keys)
        self.monitor = monitor
        self.stats = ExecutionStats()

    # --- SimJob execution (cached) ----------------------------------------

    def run(self, sim_jobs: Sequence[SimJob]) -> list[SimulationResult]:
        """Execute every job, returning results in job order.

        Cache hits are served without running; misses are executed (in
        parallel when ``jobs > 1``) and written back to the cache and the
        journal *as they complete*, so an interrupted run keeps every
        finished job.
        """
        start = time.perf_counter()
        monitor = self.monitor
        if monitor is not None:
            monitor.emit("batch_start", jobs=len(sim_jobs))
        results: list[SimulationResult | None] = [None] * len(sim_jobs)
        miss_indices: list[int] = []
        keys: dict[int, str] = {}
        if self.cache is not None or self.journal is not None:
            for i, job in enumerate(sim_jobs):
                keys[i] = key = job.key()
                hit = self.cache.get(key) if self.cache is not None else None
                if hit is not None:
                    results[i] = hit
                    self.stats.cache_hits += 1
                    if monitor is not None:
                        monitor.emit("cache_hit", index=i, key=key[:16])
                    if key in self.resumed_keys:
                        self.stats.resumed_jobs += 1
                        if monitor is not None:
                            monitor.emit("job_resumed", index=i, key=key[:16])
                        if self.journal is not None:
                            self.journal.record(key, "resumed")
                else:
                    miss_indices.append(i)
        else:
            miss_indices = list(range(len(sim_jobs)))

        try:
            if miss_indices:
                def on_result(mi: int, result, seconds: float, attempt: int) -> None:
                    i = miss_indices[mi]
                    results[i] = result
                    self.stats.jobs_run += 1
                    self.stats.absorb_counters(
                        result.counters, engine=_resolved_engine(sim_jobs[i])
                    )
                    if self.cache is not None:
                        self.cache.put(keys[i], result)
                    if self.journal is not None:
                        self.journal.record(
                            keys[i], "completed", attempt=attempt, seconds=seconds
                        )

                on_event = None
                if self.journal is not None:
                    def on_event(mi: int, status: str, attempt: int) -> None:
                        self.journal.record(
                            keys[miss_indices[mi]], status, attempt=attempt
                        )

                self._execute(
                    _run_sim_job,
                    [sim_jobs[i] for i in miss_indices],
                    on_result=on_result,
                    on_event=on_event,
                )
        finally:
            self.stats.wall_seconds += time.perf_counter() - start
        return results  # type: ignore[return-value] — every slot is filled

    # --- generic execution (uncached) --------------------------------------

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply a picklable callable to every item, preserving order."""
        start = time.perf_counter()
        if self.monitor is not None:
            self.monitor.emit("batch_start", jobs=len(items))
        try:
            outputs = self._execute(fn, list(items))
            self.stats.jobs_run += len(items)
        finally:
            self.stats.wall_seconds += time.perf_counter() - start
        return outputs

    # --- machinery ----------------------------------------------------------

    def _execute(
        self,
        fn: Callable,
        items: list,
        on_result: Callable | None = None,
        on_event: Callable | None = None,
    ) -> list:
        """Run ``fn`` over ``items``, returning values in item order.

        ``on_result(index, value, seconds, attempt)`` streams each
        completion the moment it lands (the cache/journal write-back
        path); ``on_event(index, status, attempt)`` reports per-job
        failure lifecycle (``timeout``/``crash``/``error``, then
        ``retry`` or ``failed``).
        """
        results: list = [None] * len(items)
        done = [False] * len(items)

        def record(job: _Job, value, seconds: float) -> None:
            if done[job.index]:
                return
            done[job.index] = True
            results[job.index] = value
            self.stats.observe_job(seconds)
            if on_result is not None:
                on_result(job.index, value, seconds, job.attempt)

        job_states = [_Job(i, item) for i, item in enumerate(items)]
        workers = min(self.jobs, len(items))
        monitor = self.monitor
        global _WORKER_EVENT_QUEUE
        saved_queue = _WORKER_EVENT_QUEUE
        if monitor is not None:
            # Coordinator-side paths (serial and inline fallback) emit
            # through the same queue the pool initializer hands workers.
            _WORKER_EVENT_QUEUE = monitor.worker_queue()
        try:
            if workers <= 1:
                for job in job_states:
                    ((value, seconds),) = _run_batch(
                        fn, [(job.index, 0, job.item)]
                    )
                    record(job, value, seconds)
                    if monitor is not None:
                        monitor.tick()
                return results

            size = self.chunksize
            pending: deque[list[_Job]] = deque(
                job_states[i : i + size] for i in range(0, len(job_states), size)
            )
            exhausted: list[_Job] = []
            pool_failures = 0
            while pending:
                generation = list(pending)
                pending.clear()
                failures = self._run_generation(fn, generation, workers, record)
                if failures is None:
                    # The pool itself could not be built (broken
                    # multiprocessing stack): nothing ran, retry whole.
                    pool_failures += 1
                    if pool_failures > max(1, self.max_retries):
                        for chunk in generation:
                            exhausted.extend(
                                j for j in chunk if not done[j.index]
                            )
                    else:
                        pending.extend(generation)
                    continue
                backoff_delay = 0.0
                for chunk, kind, error in failures:
                    if kind == "interrupted":
                        # Collateral of killing another chunk's hung worker
                        # (or of a pool break before the chunk started): it
                        # never ran to completion, so re-running it is a
                        # continuation, not a duplicate — and not the chunk's
                        # own failure, so its retry budget is untouched.
                        if monitor is not None:
                            for j in chunk:
                                if not done[j.index]:
                                    monitor.emit(
                                        "job_interrupted",
                                        index=j.index,
                                        attempt=j.attempt,
                                    )
                        pending.append(chunk)
                        continue
                    if len(chunk) > 1:
                        # Crash isolation: bisect to fence off the poisoned
                        # job instead of failing (or inlining) its chunk-mates.
                        mid = len(chunk) // 2
                        pending.append(chunk[:mid])
                        pending.append(chunk[mid:])
                        self.stats.chunk_bisections += 1
                        if monitor is not None:
                            monitor.emit(
                                "chunk_bisect",
                                jobs=len(chunk),
                                indices=[j.index for j in chunk],
                            )
                        continue
                    job = chunk[0]
                    job.attempt += 1
                    job.timed_out = kind == "timeout"
                    job.error = error
                    if on_event is not None:
                        on_event(job.index, kind, job.attempt)
                    if monitor is not None:
                        if kind == "timeout":
                            monitor.emit(
                                "job_cancel", index=job.index, attempt=job.attempt
                            )
                        else:
                            monitor.emit(
                                "job_error",
                                index=job.index,
                                attempt=job.attempt,
                                reason=kind,
                                error=str(error) if error is not None else None,
                            )
                    if job.attempt > self.max_retries:
                        if on_event is not None:
                            on_event(job.index, "failed", job.attempt)
                        if monitor is not None:
                            monitor.emit(
                                "job_failed",
                                index=job.index,
                                attempt=job.attempt,
                                reason=kind,
                            )
                        exhausted.append(job)
                    else:
                        self.stats.worker_retries += 1
                        if on_event is not None:
                            on_event(job.index, "retry", job.attempt)
                        if monitor is not None:
                            monitor.emit(
                                "job_retry", index=job.index, attempt=job.attempt
                            )
                        pending.append(chunk)
                        backoff_delay = max(
                            backoff_delay, self._backoff_delay(job.attempt)
                        )
                if backoff_delay > 0.0 and pending:
                    time.sleep(backoff_delay)
            if exhausted:
                self._finish_inline(fn, exhausted, record)
            return results
        finally:
            _WORKER_EVENT_QUEUE = saved_queue

    def _backoff_delay(self, attempt: int) -> float:
        """Capped exponential backoff before retry ``attempt`` (1-based)."""
        if self.backoff <= 0.0:
            return 0.0
        return min(BACKOFF_CAP_SECONDS, self.backoff * (2.0 ** (attempt - 1)))

    def _run_generation(
        self,
        fn: Callable,
        chunks: list[list[_Job]],
        workers: int,
        record: Callable,
    ) -> list[tuple[list[_Job], str, BaseException | None]] | None:
        """Run one pool generation over ``chunks``.

        Completed chunks stream through ``record`` as they finish
        (``as_completed`` collection, not submission order).  Returns
        ``(chunk, kind, error)`` for every chunk that did not complete:
        ``"timeout"`` (blew its budget; its workers were killed),
        ``"crash"`` (worker died), ``"error"`` (the job raised), or
        ``"interrupted"`` (collateral of a kill/crash elsewhere).
        Returns ``None`` when the pool could not be constructed at all.
        """
        init_kwargs: dict = {}
        if self.monitor is not None:
            # The queue rides the process-creation channel (initargs), the
            # only place a multiprocessing.Queue may legally cross.
            init_kwargs = {
                "initializer": _init_worker_events,
                "initargs": (self.monitor.worker_queue(),),
            }
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)), **init_kwargs
            )
        except Exception:
            return None
        failures: list[tuple[list[_Job], str, BaseException | None]] = []
        futures: dict = {}
        killed = False
        try:
            for chunk in chunks:
                payload = [(j.index, j.attempt, j.item) for j in chunk]
                try:
                    futures[pool.submit(_run_batch, fn, payload)] = chunk
                except Exception:
                    # The pool broke while submitting (a worker of an
                    # earlier chunk died instantly).
                    failures.append((chunk, "crash", None))
            waiting = set(futures)
            deadlines: dict = {}
            while waiting:
                tick = None
                if self.monitor is not None:
                    # Without a timeout the wait would otherwise block
                    # until a chunk lands; a finite tick keeps progress
                    # events flowing while jobs are long-running.
                    tick = _MONITOR_TICK
                if self.timeout is not None:
                    now = time.monotonic()
                    for future in waiting:
                        if future not in deadlines and future.running():
                            # The budget clock starts when a worker picks
                            # the chunk up, not while it sits in the queue.
                            deadlines[future] = (
                                now + self.timeout * len(futures[future])
                            )
                    live = [deadlines[f] for f in waiting if f in deadlines]
                    tick = _POLL_TICK
                    if live:
                        tick = min(_POLL_TICK, max(0.0, min(live) - now))
                ready, waiting = wait(
                    waiting, timeout=tick, return_when=FIRST_COMPLETED
                )
                for future in ready:
                    self._harvest(future, futures[future], record, failures)
                if self.monitor is not None:
                    self.monitor.tick()
                if self.timeout is None or not waiting:
                    continue
                now = time.monotonic()
                hung = [
                    f for f in waiting if deadlines.get(f, float("inf")) <= now
                ]
                if not hung:
                    continue
                # Genuine cancellation: SIGKILL the pool's workers so the
                # hung chunk stops consuming a core, cannot complete later
                # as a zombie (duplicate execution), and cannot block pool
                # shutdown.  Survivors are classified below.
                killed = True
                self.stats.cancellations += len(hung)
                for future in hung:
                    failures.append((futures[future], "timeout", None))
                    waiting.discard(future)
                _kill_workers(pool)
                for future in waiting:
                    future.cancel()
                    if future.done() and not future.cancelled():
                        # Finished in the instant before the kill: a
                        # real result — harvest it, don't re-run it.
                        self._harvest(future, futures[future], record, failures)
                    else:
                        failures.append((futures[future], "interrupted", None))
                waiting = set()
        except BaseException:
            # Driver interrupt (SIGINT) or an internal error: kill the
            # workers so shutdown cannot block on them, then re-raise.
            _kill_workers(pool)
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=not killed, cancel_futures=True)
        return failures

    @staticmethod
    def _harvest(future, chunk: list[_Job], record, failures) -> None:
        """File one finished future as results or a classified failure."""
        try:
            batch = future.result(timeout=0)
        except CancelledError:
            failures.append((chunk, "interrupted", None))
        except BrokenExecutor:
            failures.append((chunk, "crash", None))
        except Exception as error:
            failures.append((chunk, "error", error))
        else:
            for job, (value, seconds) in zip(chunk, batch):
                record(job, value, seconds)

    def _finish_inline(self, fn: Callable, exhausted: list[_Job], record) -> None:
        """Last resort for jobs that spent their retry budget.

        Crashes/errors degrade to inline (serial) execution so a broken
        multiprocessing stack still completes the experiment; persistent
        timeouts raise instead — an uncancellable inline hang is worse
        than a clean failure.
        """
        timed_out = [job for job in exhausted if job.timed_out]
        if timed_out:
            indices = ", ".join(str(job.index) for job in timed_out)
            raise JobTimeoutError(
                f"{len(timed_out)} job(s) (index {indices}) exceeded the "
                f"{self.timeout}s per-job budget on every attempt "
                f"(max_retries={self.max_retries}); their workers were "
                "killed, and a hanging job cannot be retried inline"
            )
        self.stats.inline_fallbacks += len(exhausted)
        warnings.warn(
            f"parallel execution failed for {len(exhausted)} job(s) after "
            f"{self.max_retries} retries; falling back to inline execution",
            RuntimeWarning,
            stacklevel=4,
        )
        for job in exhausted:
            ((value, seconds),) = _run_batch(
                fn, [(job.index, job.attempt, job.item)]
            )
            record(job, value, seconds)


def run_sim_jobs(
    sim_jobs: Sequence[SimJob],
    *,
    jobs: int | str | None = None,
    cache: ResultCache | str | None = "default",
    timeout: float | None = None,
    max_retries: int | None = None,
    stats: ExecutionStats | None = None,
    journal: RunJournal | None = None,
    resumed_keys: Collection[str] = (),
    monitor: "RunMonitor | None" = None,
) -> list[SimulationResult]:
    """One-call fan-out: execute ``sim_jobs`` and return ordered results.

    When ``stats`` is given, the runner's counters are merged into it so
    callers can aggregate across batches; ``journal``/``resumed_keys``
    thread the checkpoint journal through (see :mod:`repro.parallel.journal`);
    ``monitor`` streams the run's telemetry events (see :mod:`repro.obs`).
    """
    runner = ParallelRunner(
        jobs,
        cache=cache,
        timeout=timeout,
        max_retries=max_retries,
        journal=journal,
        resumed_keys=resumed_keys,
        monitor=monitor,
    )
    results = runner.run(sim_jobs)
    if stats is not None:
        stats.merge(runner.stats)
    return results
