#!/usr/bin/env python
"""Telemetry smoke check: live endpoints mid-run, zero result drift, overhead.

Runs a reduced Figure-8 sweep twice — once plain, once with the full
telemetry stack on (``REPRO_MONITOR`` + ``REPRO_SERVE`` + Chrome trace
export) — and requires:

* the telemetry report to be byte-identical to the plain one after
  stripping the ``[perf_counters]`` footer (telemetry observes the run,
  it may never change a reported number);
* ``/status`` and ``/metrics`` to answer *while the sweep is running*
  (the server URL is scraped from the ``[telemetry] serving ...`` stderr
  line), with ``/metrics`` parsing as Prometheus exposition text;
* the JSONL event stream to exist next to the journal with ``run_start``
  first, ``run_finish`` last, and every job's start/finish present;
* the exported Chrome trace to be a loadable trace-event document with
  one complete slice per executed job;
* telemetry wall time within ``OVERHEAD_FACTOR`` x plain + slack —
  streaming events must stay cheap relative to the simulations.

Usage::

    python scripts/check_telemetry_smoke.py

Each scenario runs in a subprocess with an isolated cache root, so the
check never touches the user's real cache.
"""

from __future__ import annotations

import difflib
import glob
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request

#: The reduced sweep: 2 allocators x (2 curve rates + 1 saturation) = 6 jobs.
_DRIVER = (
    "from repro.experiments import fig8_mesh as f8; "
    "print(f8.report(f8.run(rates=(0.02, 0.06), "
    "allocators=('input_first', 'vix'), jobs=2)))"
)

_JOB_COUNT = 6

#: Telemetry wall time must stay under factor * plain + slack seconds.
OVERHEAD_FACTOR = 1.5
OVERHEAD_SLACK_SECONDS = 5.0


def _base_env(cache_dir: str) -> dict:
    env = {
        name: value
        for name, value in os.environ.items()
        if not name.startswith("REPRO_")
    }
    env["PYTHONPATH"] = "src"
    env["REPRO_CACHE_DIR"] = cache_dir
    return env


def _strip_counters(stdout: str) -> str:
    lines = [
        line
        for line in stdout.splitlines()
        if not line.startswith("[perf_counters]")
    ]
    return "\n".join(lines) + "\n"


def _run_plain(env: dict) -> tuple[str, float]:
    start = time.perf_counter()
    result = subprocess.run(
        [sys.executable, "-c", _DRIVER],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    seconds = time.perf_counter() - start
    if result.returncode != 0:
        raise SystemExit(
            f"[telemetry-smoke] plain run failed "
            f"(exit {result.returncode}):\n{result.stderr}"
        )
    return _strip_counters(result.stdout), seconds


def _get(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode()


def _check_prometheus(text: str) -> list[str]:
    """Every sample line must be '<name or name{labels}> <value>'."""
    problems = []
    samples = 0
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        try:
            _, value = line.rsplit(" ", 1)
            float(value)
            samples += 1
        except ValueError:
            problems.append(f"unparseable /metrics line: {line!r}")
    if samples == 0:
        problems.append("/metrics carried no samples")
    if "repro_jobs_total" not in text:
        problems.append("/metrics is missing repro_jobs_total")
    return problems


def _run_telemetry(env: dict, trace_out: str) -> tuple[str, float, list[str]]:
    """Run the driver with the stack on; poll the endpoints mid-run."""
    env = dict(env)
    env.update(
        REPRO_MONITOR="1",
        REPRO_SERVE="0",  # any free port; scraped from stderr below
        REPRO_TRACE_EXPORT="chrome",
        REPRO_TRACE_EXPORT_OUT=trace_out,
    )
    problems: list[str] = []
    start = time.perf_counter()
    proc = subprocess.Popen(
        [sys.executable, "-c", _DRIVER],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    # The serving line is printed before the first scenario executes, so
    # everything after it is genuinely mid-run.
    url = None
    stderr_tail = []
    assert proc.stderr is not None
    while True:
        line = proc.stderr.readline()
        if not line:
            break
        stderr_tail.append(line)
        # The live \r-progress renderer shares stderr, so the serving
        # line may sit after a carriage-returned segment — search in it.
        marker = "[telemetry] serving "
        if marker in line:
            url = line.split(marker, 1)[1].split()[0].strip()
            break
    if url is None:
        proc.kill()
        raise SystemExit(
            "[telemetry-smoke] no '[telemetry] serving' line on stderr:\n"
            + "".join(stderr_tail)
        )

    status_doc = None
    metrics_text = None
    while proc.poll() is None:
        try:
            doc = json.loads(_get(url + "/status", timeout=2))
        except (OSError, ValueError):
            break  # server already gone: the sweep finished
        if doc.get("jobs_total", 0) > 0 and not doc.get("finished"):
            # Keep the first live snapshot; prefer one that caught a
            # job actually in flight in a worker.
            if status_doc is None or doc.get("in_flight_count", 0) > 0:
                status_doc = doc
                metrics_text = _get(url + "/metrics", timeout=2)
            if doc.get("in_flight_count", 0) > 0:
                break
        time.sleep(0.05)

    stdout, stderr = proc.communicate(timeout=600)
    seconds = time.perf_counter() - start
    if proc.returncode != 0:
        raise SystemExit(
            f"[telemetry-smoke] telemetry run failed "
            f"(exit {proc.returncode}):\n{stderr}"
        )

    if status_doc is None:
        problems.append("/status never reflected an in-progress sweep")
    else:
        print(
            f"[telemetry-smoke] mid-run /status: "
            f"{status_doc['completed']}/{status_doc['jobs_total']} jobs, "
            f"{status_doc['in_flight_count']} in flight"
        )
        if status_doc.get("finished"):
            problems.append("mid-run /status already claims finished")
    if metrics_text is None:
        problems.append("/metrics was never scraped mid-run")
    else:
        problems.extend(_check_prometheus(metrics_text))
    return _strip_counters(stdout), seconds, problems


def _check_event_stream(cache_dir: str) -> list[str]:
    streams = glob.glob(os.path.join(cache_dir, "events", "*.jsonl"))
    if len(streams) != 1:
        return [f"expected 1 event stream, found {streams}"]
    events = []
    with open(streams[0]) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    problems = []
    kinds = [event["kind"] for event in events]
    seqs = [event["seq"] for event in events]
    if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
        problems.append("event seqs are not strictly increasing")
    if not kinds or kinds[0] != "run_start":
        problems.append(f"stream does not open with run_start: {kinds[:3]}")
    if not kinds or kinds[-1] != "run_finish":
        problems.append(f"stream does not close with run_finish: {kinds[-3:]}")
    for kind in ("job_start", "job_finish"):
        if kinds.count(kind) != _JOB_COUNT:
            problems.append(
                f"expected {_JOB_COUNT} {kind} events, got {kinds.count(kind)}"
            )
    if not problems:
        print(
            f"[telemetry-smoke] event stream: {len(events)} events, "
            f"{kinds.count('job_finish')} jobs finished"
        )
    return problems


def _check_chrome_trace(path: str) -> list[str]:
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"chrome trace unreadable: {exc}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["chrome trace has no traceEvents"]
    slices = [e for e in events if e.get("ph") == "X" and e.get("cat") == "job"]
    problems = []
    if len(slices) != _JOB_COUNT:
        problems.append(
            f"expected {_JOB_COUNT} job slices in the trace, got {len(slices)}"
        )
    if not any(e.get("ph") == "M" for e in events):
        problems.append("chrome trace has no process metadata")
    if not problems:
        print(
            f"[telemetry-smoke] chrome trace: {len(events)} trace events, "
            f"{len(slices)} job slices"
        )
    return problems


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="telemetry-smoke-") as tmp:
        plain_env = _base_env(os.path.join(tmp, "plain"))
        telemetry_cache = os.path.join(tmp, "telemetry")
        telemetry_env = _base_env(telemetry_cache)
        trace_out = os.path.join(tmp, "trace.json")

        plain, plain_seconds = _run_plain(plain_env)
        telemetry, telemetry_seconds, problems = _run_telemetry(
            telemetry_env, trace_out
        )

        if plain != telemetry:
            print("[telemetry-smoke] MISMATCH between plain and telemetry reports")
            sys.stdout.writelines(
                difflib.unified_diff(
                    plain.splitlines(keepends=True),
                    telemetry.splitlines(keepends=True),
                    fromfile="plain",
                    tofile="telemetry",
                )
            )
            return 1
        print("[telemetry-smoke] plain and telemetry reports identical")

        problems.extend(_check_event_stream(telemetry_cache))
        problems.extend(_check_chrome_trace(trace_out))

        budget = OVERHEAD_FACTOR * plain_seconds + OVERHEAD_SLACK_SECONDS
        print(
            f"[telemetry-smoke] wall: plain {plain_seconds:.2f}s, "
            f"telemetry {telemetry_seconds:.2f}s "
            f"(budget {budget:.2f}s)"
        )
        if telemetry_seconds > budget:
            problems.append(
                f"telemetry run took {telemetry_seconds:.2f}s, over the "
                f"{budget:.2f}s overhead budget"
            )

        if problems:
            for problem in problems:
                print(f"[telemetry-smoke] FAIL: {problem}")
            return 1
    print("[telemetry-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
