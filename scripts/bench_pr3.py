#!/usr/bin/env python
"""PR 3 perf-trajectory benchmark: observability overhead.

Measures 8x8-mesh uniform-traffic points (fractions of the mesh saturation
rate) in a single process with no result caching, under three collection
modes:

* ``off``    — observability disabled (the default config): must cost
  nothing.  With ``--ref-src`` pointing at a pre-PR checkout, the same
  point is also timed against that tree and the ratio is recorded — the
  acceptance bar is < 5% regression.
* ``metrics`` — metrics registry + allocator matching probes enabled
  (no files written).  This is the expensive mode by design: probes
  disable the forced-move fast path and run Kuhn's maximum matching per
  contended round, so its ratio is reported, not bounded.
* ``trace1pct`` — metrics plus flit tracing at 1% packet sampling, the
  recommended production-tracing configuration.

Results are written to ``BENCH_PR3.json``.  ``--check BASELINE.json``
runs only the low-load smoke point and fails (exit 1) when

* the disabled-mode run regressed more than ``--threshold`` (default 5%)
  against ``--ref-src`` (skipped when no reference tree is given), or
* the trace-at-1% overhead *ratio* grew more than ``--slack`` (default
  50%, it is a small number) over the committed baseline ratio.

Ratios, not absolute seconds, are compared, so the check is stable across
machines of different absolute speed.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.network.config import paper_config  # noqa: E402
from repro.obs import ObservabilityConfig  # noqa: E402
from repro.sim.engine import run_simulation  # noqa: E402

#: Uniform-traffic saturation of the paper's 8x8 mesh baseline (packets per
#: node per cycle); sweep loads are expressed as fractions of it.
SATURATION_RATE = 0.105

LOADS = (0.05, 0.5)
ALLOCATORS = ("input_first", "vix")

MODES = {
    "off": None,
    "metrics": ObservabilityConfig(metrics=True),
    "trace1pct": ObservabilityConfig(metrics=True, trace=True, trace_sample=0.01),
}


def _run_once(allocator: str, load: float, mode: str, measure: int) -> float:
    cfg = paper_config(allocator)
    rate = round(load * SATURATION_RATE, 6)
    t0 = time.perf_counter()
    run_simulation(
        cfg,
        injection_rate=rate,
        seed=1,
        warmup=1000,
        measure=measure,
        obs=MODES[mode],
    )
    return time.perf_counter() - t0


def _best_of(n: int, *args) -> float:
    return min(_run_once(*args) for _ in range(n))


def _run_ref(src_root: Path, allocator: str, load: float, measure: int) -> float:
    """Time one observability-free run against an arbitrary source tree in
    a subprocess, same protocol as :func:`_run_once` mode ``off``."""
    rate = round(load * SATURATION_RATE, 6)
    code = (
        "import sys, time\n"
        f"sys.path.insert(0, {str(src_root)!r})\n"
        "from repro.network.config import paper_config\n"
        "from repro.sim.engine import run_simulation\n"
        "t0 = time.perf_counter()\n"
        f"run_simulation(paper_config({allocator!r}), injection_rate={rate}, "
        f"seed=1, warmup=1000, measure={measure})\n"
        "print(time.perf_counter() - t0)\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], check=True, capture_output=True, text=True
    )
    return float(out.stdout.strip().splitlines()[-1])


#: This tree's src/ root — the "new" side of the A/B comparison.
THIS_SRC = Path(__file__).resolve().parent.parent / "src"


def _ab_overhead(ref_src: Path, allocator: str, load: float, measure: int,
                 repeats: int) -> tuple[float, float]:
    """Best-of-N (new_s, pre_pr_s) with the two trees strictly interleaved.

    Back-to-back blocks of same-tree runs read clock drift (CPU frequency,
    container neighbours) as overhead; alternating new/ref runs exposes
    both trees to the same drift, and best-of-N then compares like with
    like.  Both sides use the identical subprocess protocol.
    """
    new = ref = float("inf")
    for _ in range(repeats):
        new = min(new, _run_ref(THIS_SRC, allocator, load, measure))
        ref = min(ref, _run_ref(ref_src, allocator, load, measure))
    return new, ref


def write_baseline(path: Path, repeats: int, measure: int,
                   ref_src: Path | None) -> None:
    results: dict[str, dict] = {}
    for allocator in ALLOCATORS:
        results[allocator] = {}
        for load in LOADS:
            off = _best_of(repeats, allocator, load, "off", measure)
            metrics = _best_of(repeats, allocator, load, "metrics", measure)
            trace = _best_of(repeats, allocator, load, "trace1pct", measure)
            entry = {
                "off_s": round(off, 4),
                "metrics_s": round(metrics, 4),
                "trace1pct_s": round(trace, 4),
                "metrics_overhead": round(metrics / off - 1.0, 3),
                "trace1pct_overhead": round(trace / off - 1.0, 3),
            }
            if ref_src is not None:
                new, ref = _ab_overhead(ref_src, allocator, load, measure,
                                        repeats)
                entry["pre_pr_off_s"] = round(ref, 4)
                entry["off_overhead_vs_pre_pr"] = round(new / ref - 1.0, 3)
            results[allocator][str(load)] = entry
            print(f"{allocator:12s} load={load}: " + " ".join(
                f"{k}={v}" for k, v in entry.items()))
    payload = {
        "benchmark": "8x8 mesh, uniform traffic, seed 1, warmup 1000, "
                     f"measure {measure}, single process, no cache",
        "saturation_rate": SATURATION_RATE,
        "loads_are_fractions_of_saturation": True,
        "repeats": repeats,
        "python": platform.python_version(),
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def check_against(baseline_path: Path, threshold: float, slack: float,
                  measure: int, ref_src: Path | None) -> int:
    baseline = json.loads(baseline_path.read_text())
    entry = baseline["results"]["input_first"]["0.05"]
    failed = False

    off = _best_of(3, "input_first", 0.05, "off", measure)
    if ref_src is not None:
        # The mid-load point: its runs are ~10x longer than low-load, so
        # best-of-5 interleaved timing resolves well below the 5% ceiling
        # (the 0.25s low-load runs carry +-5% scheduler noise on their own).
        new, ref = _ab_overhead(ref_src, "input_first", 0.5, measure, 5)
        overhead = new / ref - 1.0
        print(f"disabled-mode smoke (load 0.5): off={new:.3f}s "
              f"pre_pr={ref:.3f}s overhead={overhead:+.1%} "
              f"(ceiling {threshold:+.0%})")
        if overhead > threshold:
            print(f"FAIL: disabled observability costs more than "
                  f"{threshold:.0%} over the pre-PR tree")
            failed = True
    else:
        print(f"disabled-mode smoke: off={off:.3f}s (no --ref-src: "
              "pre-PR comparison skipped)")

    trace = _best_of(3, "input_first", 0.05, "trace1pct", measure)
    ratio = trace / off
    base_ratio = 1.0 + entry["trace1pct_overhead"]
    ceiling = base_ratio * (1.0 + slack)
    print(f"trace-at-1% smoke: trace={trace:.3f}s ratio={ratio:.3f}x "
          f"(baseline {base_ratio:.3f}x, ceiling {ceiling:.3f}x)")
    if ratio > ceiling:
        print(f"FAIL: enabled-tracing overhead grew more than {slack:.0%} "
              f"over {baseline_path}")
        failed = True

    print("FAIL" if failed else "OK")
    return 1 if failed else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_PR3.json", type=Path,
                    help="output path for the baseline JSON")
    ap.add_argument("--check", metavar="BASELINE", type=Path,
                    help="smoke-check the low-load point against a baseline")
    ap.add_argument("--threshold", type=float, default=0.05,
                    help="allowed disabled-mode overhead vs --ref-src "
                         "(default 0.05)")
    ap.add_argument("--slack", type=float, default=0.5,
                    help="allowed relative growth of the trace-at-1% "
                         "overhead ratio vs the baseline (default 0.5)")
    ap.add_argument("--repeats", type=int, default=2,
                    help="best-of-N repeats per point (default 2)")
    ap.add_argument("--measure", type=int, default=3000,
                    help="measurement window in cycles (default 3000)")
    ap.add_argument("--ref-src", type=Path, default=None,
                    help="src/ root of a pre-PR checkout; when given, "
                         "disabled-mode runs are also timed against that "
                         "tree and the overhead ratio recorded/enforced")
    args = ap.parse_args()
    if args.check is not None:
        return check_against(args.check, args.threshold, args.slack,
                             args.measure, args.ref_src)
    write_baseline(args.out, args.repeats, args.measure, args.ref_src)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
