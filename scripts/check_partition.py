#!/usr/bin/env python
"""CI gates for the chiplet-partitioned engine (PR 9).

Two independent checks, both run by default:

* ``--equivalence`` — the golden-output gate.  The full f8 and t1
  reports are generated twice: once on the monolithic dense engine and
  once with ``REPRO_ENGINE=partitioned`` and a ``1x1`` partition with
  zero-latency links (the degenerate decomposition: one domain owning
  the whole network).  The two reports must be byte-identical modulo
  the wall-clock ``[perf_counters]`` footer — the partition machinery
  (domain build, link plumbing, per-domain injector paths, quiescence
  reduction) may not change one reported number.

* ``--invariants`` — the boundary-correctness smoke.  A 2x2-partitioned
  8x8 mesh runs with the flit-conservation and credit-accounting
  checkers executing every few cycles through the engine's ``on_cycle``
  hook, plus once at the end.  Any flit lost/duplicated at a cut, or
  any credit loop that does not still mirror its destination buffer
  exactly, fails at the first bad cycle.

Both checks run the simulations in subprocess-free, cache-free process
state where possible; the equivalence reports go through the real CLI
in subprocesses so the comparison covers the whole stack.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

#: Wall-clock lines excluded from the report comparison.
VOLATILE_MARKERS = ("[perf_counters]",)


def _report(experiment: str, extra_env: dict[str, str]) -> list[str]:
    """One experiment report via the real CLI, volatile lines removed."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_NO_CACHE"] = "1"
    env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", experiment, "--seed", "1"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"error: `repro {experiment}` with {extra_env} exited "
            f"{proc.returncode}:\n{proc.stderr}"
        )
    return [
        line
        for line in proc.stdout.splitlines()
        if not any(marker in line for marker in VOLATILE_MARKERS)
    ]


def check_equivalence(experiments: tuple[str, ...] = ("f8", "t1")) -> bool:
    """1x1-partition-zero-latency reports == monolithic dense reports."""
    ok = True
    for experiment in experiments:
        print(f"[equivalence] {experiment}: monolithic dense ...", flush=True)
        dense = _report(experiment, {"REPRO_ENGINE": "dense"})
        print(f"[equivalence] {experiment}: partitioned 1x1 ...", flush=True)
        part = _report(
            experiment,
            {
                "REPRO_ENGINE": "partitioned",
                "REPRO_PARTITION": "1x1",
                "REPRO_LINK_LATENCY": "0",
            },
        )
        if dense == part:
            print(f"[equivalence] {experiment}: OK ({len(dense)} lines identical)")
            continue
        ok = False
        print(f"[equivalence] {experiment}: REPORTS DIFFER")
        for i, (a, b) in enumerate(zip(dense, part)):
            if a != b:
                print(f"  line {i + 1}:")
                print(f"    dense:       {a}")
                print(f"    partitioned: {b}")
                break
        if len(dense) != len(part):
            print(f"  line counts differ: dense {len(dense)}, partitioned {len(part)}")
    return ok


def check_invariants() -> bool:
    """2x2-partitioned 8x8 mesh under live invariant checking."""
    sys.path.insert(0, SRC)
    from repro.network.config import NetworkConfig, RouterConfig
    from repro.network.links import PartitionConfig
    from repro.sim.partition import PartitionedSimulation, check_invariants

    cfg = NetworkConfig(
        topology="mesh",
        num_terminals=64,
        router=RouterConfig(num_vcs=6, buffer_depth=5, allocator="vix",
                            virtual_inputs=2, vc_policy="vix_dimension"),
    )
    sim = PartitionedSimulation(
        cfg,
        partition=PartitionConfig(dims=(2, 2), link_latency=4, link_width=2),
        injection_rate=0.08,
        seed=1,
    )
    checked = 0

    def hook(s):
        nonlocal checked
        if s.cycle % 5 == 0:
            check_invariants(s)
            checked += 1

    sim.on_cycle = hook
    print("[invariants] 2x2-partitioned 8x8 mesh, checking every 5 cycles ...",
          flush=True)
    result = sim.run(warmup=300, measure=900, drain_limit=1200)
    check_invariants(sim)
    crossed = result.counters.get("interchip_flits", 0)
    print(f"[invariants] OK: {checked} mid-run checks, "
          f"{result.packets_ejected} packets ejected, "
          f"{crossed} inter-chip flit crossings, drained={result.drained}")
    if crossed == 0:
        print("[invariants] FAIL: no flit ever crossed a cut link "
              "(the smoke proved nothing)")
        return False
    return result.packets_ejected > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--equivalence", action="store_true",
                        help="run only the 1x1-vs-dense golden-output gate")
    parser.add_argument("--invariants", action="store_true",
                        help="run only the 2x2 invariant smoke")
    args = parser.parse_args()
    run_eq = args.equivalence or not args.invariants
    run_inv = args.invariants or not args.equivalence
    ok = True
    if run_inv:
        ok &= check_invariants()
    if run_eq:
        ok &= check_equivalence()
    print("OK" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
