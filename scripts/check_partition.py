#!/usr/bin/env python
"""CI gates for the chiplet-partitioned engine (PR 9; vectorized PR 10).

Three independent checks, all run by default:

* ``--equivalence`` — the golden-output gate.  The full f8 and t1
  reports are generated twice: once on the monolithic dense engine and
  once with ``REPRO_ENGINE=partitioned`` and a ``1x1`` partition with
  zero-latency links (the degenerate decomposition: one domain owning
  the whole network).  The two reports must be byte-identical modulo
  the wall-clock ``[perf_counters]`` footer — the partition machinery
  (domain build, link plumbing, per-domain injector paths, quiescence
  reduction) may not change one reported number.

* ``--invariants`` — the boundary-correctness smoke.  A 2x2-partitioned
  8x8 mesh runs with the flit-conservation and credit-accounting
  checkers executing every few cycles through the engine's ``on_cycle``
  hook, plus once at the end.  Any flit lost/duplicated at a cut, or
  any credit loop that does not still mirror its destination buffer
  exactly, fails at the first bad cycle.  A second pass runs the same
  smoke on **vectorized domains** with an asymmetric credit latency
  (skipped without numpy).

* ``--vectorized`` — the SoA-domain gates (skipped without numpy):
  the f12 report (all of whose allocators have an SoA formulation)
  on ``REPRO_ENGINE=vectorized`` must be byte-identical to the
  1x1-partitioned ``REPRO_DOMAIN_ENGINE=vectorized`` report;
  in-process, a 2x2 partition with vectorized domains must match gated
  domains on every supported allocator, and a workers=2 run must match
  serial.

Both checks run the simulations in subprocess-free, cache-free process
state where possible; the equivalence reports go through the real CLI
in subprocesses so the comparison covers the whole stack.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

#: Wall-clock lines excluded from the report comparison.
VOLATILE_MARKERS = ("[perf_counters]",)


def _report(experiment: str, extra_env: dict[str, str]) -> list[str]:
    """One experiment report via the real CLI, volatile lines removed."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_NO_CACHE"] = "1"
    env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", experiment, "--seed", "1"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"error: `repro {experiment}` with {extra_env} exited "
            f"{proc.returncode}:\n{proc.stderr}"
        )
    return [
        line
        for line in proc.stdout.splitlines()
        if not any(marker in line for marker in VOLATILE_MARKERS)
    ]


def check_equivalence(experiments: tuple[str, ...] = ("f8", "t1")) -> bool:
    """1x1-partition-zero-latency reports == monolithic dense reports."""
    ok = True
    for experiment in experiments:
        print(f"[equivalence] {experiment}: monolithic dense ...", flush=True)
        dense = _report(experiment, {"REPRO_ENGINE": "dense"})
        print(f"[equivalence] {experiment}: partitioned 1x1 ...", flush=True)
        part = _report(
            experiment,
            {
                "REPRO_ENGINE": "partitioned",
                "REPRO_PARTITION": "1x1",
                "REPRO_LINK_LATENCY": "0",
            },
        )
        if dense == part:
            print(f"[equivalence] {experiment}: OK ({len(dense)} lines identical)")
            continue
        ok = False
        print(f"[equivalence] {experiment}: REPORTS DIFFER")
        for i, (a, b) in enumerate(zip(dense, part)):
            if a != b:
                print(f"  line {i + 1}:")
                print(f"    dense:       {a}")
                print(f"    partitioned: {b}")
                break
        if len(dense) != len(part):
            print(f"  line counts differ: dense {len(dense)}, partitioned {len(part)}")
    return ok


def _have_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _invariant_run(partition_kwargs: dict, label: str) -> bool:
    from repro.network.config import NetworkConfig, RouterConfig
    from repro.network.links import PartitionConfig
    from repro.sim.partition import PartitionedSimulation, check_invariants

    cfg = NetworkConfig(
        topology="mesh",
        num_terminals=64,
        router=RouterConfig(num_vcs=6, buffer_depth=5, allocator="vix",
                            virtual_inputs=2, vc_policy="vix_dimension"),
    )
    sim = PartitionedSimulation(
        cfg,
        partition=PartitionConfig(dims=(2, 2), **partition_kwargs),
        injection_rate=0.08,
        seed=1,
    )
    checked = 0

    def hook(s):
        nonlocal checked
        if s.cycle % 5 == 0:
            check_invariants(s)
            checked += 1

    sim.on_cycle = hook
    print(f"[invariants] {label}: 2x2-partitioned 8x8 mesh, checking every "
          "5 cycles ...", flush=True)
    result = sim.run(warmup=300, measure=900, drain_limit=1200)
    check_invariants(sim)
    crossed = result.counters.get("interchip_flits", 0)
    print(f"[invariants] {label}: OK: {checked} mid-run checks, "
          f"{result.packets_ejected} packets ejected, "
          f"{crossed} inter-chip flit crossings, drained={result.drained}")
    if crossed == 0:
        print(f"[invariants] {label}: FAIL: no flit ever crossed a cut link "
              "(the smoke proved nothing)")
        return False
    return result.packets_ejected > 0


def check_invariants() -> bool:
    """2x2-partitioned 8x8 mesh under live invariant checking."""
    sys.path.insert(0, SRC)
    ok = _invariant_run(dict(link_latency=4, link_width=2), "gated")
    if _have_numpy():
        # Asymmetric credit return exercises the separate credit-latency
        # path through the array-side boundary machinery.
        ok &= _invariant_run(
            dict(link_latency=4, link_width=2, link_credit_latency=1,
                 domain_engine="vectorized"),
            "vectorized+asym-credit",
        )
    else:
        print("[invariants] vectorized pass skipped (no numpy)")
    return ok


def check_vectorized() -> bool:
    """Vectorized-domain gates: monolith identity + gated equivalence."""
    if not _have_numpy():
        print("[vectorized] skipped (no numpy)")
        return True
    sys.path.insert(0, SRC)
    ok = True
    # CLI-level golden gate: monolithic vectorized vs 1x1 vec partition.
    # f12 (not f8): every f12 allocator has an SoA formulation, so the
    # strict fail-loud domain-engine contract never trips.
    print("[vectorized] f12: monolithic vectorized ...", flush=True)
    mono = _report("f12", {"REPRO_ENGINE": "vectorized"})
    print("[vectorized] f12: partitioned 1x1 vectorized domains ...", flush=True)
    part = _report(
        "f12",
        {
            "REPRO_ENGINE": "partitioned",
            "REPRO_PARTITION": "1x1",
            "REPRO_LINK_LATENCY": "0",
            "REPRO_DOMAIN_ENGINE": "vectorized",
        },
    )
    if mono == part:
        print(f"[vectorized] f12: OK ({len(mono)} lines identical)")
    else:
        ok = False
        print("[vectorized] f12: REPORTS DIFFER")
        for i, (a, b) in enumerate(zip(mono, part)):
            if a != b:
                print(f"  line {i + 1}:")
                print(f"    monolithic:  {a}")
                print(f"    partitioned: {b}")
                break
        if len(mono) != len(part):
            print(f"  line counts differ: monolithic {len(mono)}, "
                  f"partitioned {len(part)}")
    # In-process: 2x2 vectorized domains == gated domains, per allocator,
    # plus worker-count invariance.
    import dataclasses

    from repro.network.config import NetworkConfig, RouterConfig
    from repro.network.links import PartitionConfig
    from repro.sim.partition import PartitionedSimulation

    engine_counters = ("router_wakeups", "cycles_skipped", "vec_kernel_cycles")

    def comparable(result) -> dict:
        d = dataclasses.asdict(result)
        for key in engine_counters:
            d["counters"].pop(key, None)
        return d

    def run_one(allocator: str, domain_engine: str, workers: int = 1) -> dict:
        cfg = NetworkConfig(
            topology="mesh",
            num_terminals=64,
            router=RouterConfig(num_vcs=4, allocator=allocator),
        )
        sim = PartitionedSimulation(
            cfg,
            partition=PartitionConfig(
                dims=(2, 2), link_latency=2, link_width=2,
                domain_engine=domain_engine, workers=workers,
            ),
            injection_rate=0.1,
            seed=1,
        )
        return comparable(sim.run(warmup=200, measure=600, drain_limit=800))

    for allocator in ("input_first", "output_first", "vix", "ideal_vix"):
        gated = run_one(allocator, "gated")
        vec = run_one(allocator, "vectorized")
        if gated == vec:
            print(f"[vectorized] 2x2 {allocator}: OK (matches gated domains)")
        else:
            ok = False
            diff = [k for k in gated if gated[k] != vec.get(k)]
            print(f"[vectorized] 2x2 {allocator}: MISMATCH in {diff}")
    serial = run_one("vix", "vectorized")
    workers = run_one("vix", "vectorized", workers=2)
    if serial == workers:
        print("[vectorized] 2x2 vix workers=2: OK (matches serial)")
    else:
        ok = False
        diff = [k for k in serial if serial[k] != workers.get(k)]
        print(f"[vectorized] 2x2 vix workers=2: MISMATCH in {diff}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--equivalence", action="store_true",
                        help="run only the 1x1-vs-dense golden-output gate")
    parser.add_argument("--invariants", action="store_true",
                        help="run only the 2x2 invariant smoke")
    parser.add_argument("--vectorized", action="store_true",
                        help="run only the vectorized-domain gates")
    args = parser.parse_args()
    explicit = args.equivalence or args.invariants or args.vectorized
    run_eq = args.equivalence or not explicit
    run_inv = args.invariants or not explicit
    run_vec = args.vectorized or not explicit
    ok = True
    if run_inv:
        ok &= check_invariants()
    if run_eq:
        ok &= check_equivalence()
    if run_vec:
        ok &= check_vectorized()
    print("OK" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
