#!/usr/bin/env python
"""PR 2 perf-trajectory benchmark: activity gating vs the dense loop.

Measures the 8x8-mesh uniform-traffic sweep points (fractions of the mesh
saturation rate, ~0.105 packets/node/cycle) in a single process with no
result caching, under two stepping modes:

* ``dense``  — ``activity_gating=False, fast_injection=False``: the
  pre-gating reference loop (every router, NI, and injector visited every
  cycle).
* ``fast``   — ``activity_gating=True, fast_injection=True``: the gated
  loop with geometric-gap injection, as used by sweeps and benchmarks.

Both modes share every state-changing helper, so the comparison isolates
the scheduling strategy.  Results are written to ``BENCH_PR2.json`` (the
first committed point of the perf trajectory; see ``make bench-baseline``).

``--check BASELINE.json`` runs only the low-load smoke point and fails
(exit 1) if the gated/dense speedup regressed by more than ``--threshold``
(default 25%) against the committed baseline.  The check compares
*speedups*, not wall-clock seconds, so it is stable across machines of
different absolute speed (CI runners vs the machine that wrote the
baseline).
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.network.config import paper_config  # noqa: E402
from repro.sim.engine import run_simulation  # noqa: E402

#: Uniform-traffic saturation of the paper's 8x8 mesh baseline (packets per
#: node per cycle); sweep loads are expressed as fractions of it.
SATURATION_RATE = 0.105

LOADS = (0.05, 0.2, 1.0)
ALLOCATORS = ("input_first", "vix")

MODES = {
    "dense": dict(activity_gating=False, fast_injection=False),
    "fast": dict(activity_gating=True, fast_injection=True),
}


def _run_once(allocator: str, load: float, mode: str, measure: int) -> float:
    cfg = paper_config(allocator)
    rate = round(load * SATURATION_RATE, 6)
    t0 = time.perf_counter()
    run_simulation(
        cfg,
        injection_rate=rate,
        seed=1,
        warmup=1000,
        measure=measure,
        **MODES[mode],
    )
    return time.perf_counter() - t0


def _best_of(n: int, *args) -> float:
    return min(_run_once(*args) for _ in range(n))


def _run_ref(src_root: Path, allocator: str, load: float, measure: int) -> float:
    """Time one run against a different source tree (e.g. the pre-PR
    checkout) in a subprocess, same protocol as :func:`_run_once`."""
    rate = round(load * SATURATION_RATE, 6)
    code = (
        "import sys, time\n"
        f"sys.path.insert(0, {str(src_root)!r})\n"
        "from repro.network.config import paper_config\n"
        "from repro.sim.engine import run_simulation\n"
        "t0 = time.perf_counter()\n"
        f"run_simulation(paper_config({allocator!r}), injection_rate={rate}, "
        f"seed=1, warmup=1000, measure={measure})\n"
        "print(time.perf_counter() - t0)\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], check=True, capture_output=True, text=True
    )
    return float(out.stdout.strip().splitlines()[-1])


def write_baseline(path: Path, repeats: int, measure: int,
                   ref_src: Path | None) -> None:
    results: dict[str, dict] = {}
    for allocator in ALLOCATORS:
        results[allocator] = {}
        for load in LOADS:
            dense = _best_of(repeats, allocator, load, "dense", measure)
            fast = _best_of(repeats, allocator, load, "fast", measure)
            entry = {
                "dense_s": round(dense, 4),
                "fast_s": round(fast, 4),
                "speedup": round(dense / fast, 3),
            }
            if ref_src is not None:
                ref = min(_run_ref(ref_src, allocator, load, measure)
                          for _ in range(repeats))
                entry["pre_pr_dense_s"] = round(ref, 4)
                entry["speedup_vs_pre_pr"] = round(ref / fast, 3)
            results[allocator][str(load)] = entry
            print(f"{allocator:12s} load={load}: " + " ".join(
                f"{k}={v}" for k, v in entry.items()))
    payload = {
        "benchmark": "8x8 mesh, uniform traffic, seed 1, warmup 1000, "
                     f"measure {measure}, single process, no cache",
        "saturation_rate": SATURATION_RATE,
        "loads_are_fractions_of_saturation": True,
        "repeats": repeats,
        "python": platform.python_version(),
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def check_against(baseline_path: Path, threshold: float, measure: int) -> int:
    baseline = json.loads(baseline_path.read_text())
    entry = baseline["results"]["input_first"]["0.05"]
    base_speedup = entry["speedup"]
    dense = _best_of(3, "input_first", 0.05, "dense", measure)
    fast = _best_of(3, "input_first", 0.05, "fast", measure)
    speedup = dense / fast
    floor = base_speedup * (1.0 - threshold)
    print(f"low-load smoke: dense={dense:.3f}s fast={fast:.3f}s "
          f"speedup={speedup:.3f}x (baseline {base_speedup}x, floor {floor:.3f}x)")
    if speedup < floor:
        print(f"FAIL: gated speedup regressed more than "
              f"{threshold:.0%} vs {baseline_path}")
        return 1
    print("OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_PR2.json", type=Path,
                    help="output path for the baseline JSON")
    ap.add_argument("--check", metavar="BASELINE", type=Path,
                    help="smoke-check the low-load point against a baseline")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed relative speedup regression (default 0.25)")
    ap.add_argument("--repeats", type=int, default=2,
                    help="best-of-N repeats per point (default 2)")
    ap.add_argument("--measure", type=int, default=3000,
                    help="measurement window in cycles (default 3000)")
    ap.add_argument("--ref-src", type=Path, default=None,
                    help="src/ root of a pre-PR checkout; when given, each "
                         "point also records pre_pr_dense_s / "
                         "speedup_vs_pre_pr measured against that tree")
    args = ap.parse_args()
    if args.check is not None:
        return check_against(args.check, args.threshold, args.measure)
    write_baseline(args.out, args.repeats, args.measure, args.ref_src)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
