#!/usr/bin/env python
"""Fault-tolerance smoke check for the parallel execution layer.

Runs a reduced Figure-8 sweep twice — once clean, once with deterministic
fault injection (one worker hard-exits, one job hangs twice and must be
killed and retried) — and requires:

* the faulted report to be byte-identical to the clean one after
  stripping the ``[perf_counters]`` footer (faults may never change a
  reported number, only cost retries);
* the run journal to record the injected failures (a ``timeout`` kill
  and ``retry`` requeues) and every job's eventual completion.

Usage::

    python scripts/check_fault_smoke.py

The driver runs in a subprocess per scenario with an isolated cache root,
so the check never touches the user's real cache.
"""

from __future__ import annotations

import difflib
import glob
import json
import os
import subprocess
import sys
import tempfile

#: The reduced sweep: 2 allocators x (2 curve rates + 1 saturation) = 6 jobs.
_DRIVER = (
    "from repro.experiments import fig8_mesh as f8; "
    "print(f8.report(f8.run(rates=(0.02, 0.06), "
    "allocators=('input_first', 'vix'), jobs=2)))"
)

_JOB_COUNT = 6

#: Job 1's first attempt hard-exits its worker (breaking the pool); job 2
#: hangs on two attempts and must be killed on its budget both times.
_FAULTS = "exit@1,hang@2x2"


def _base_env(cache_dir: str) -> dict:
    env = {
        name: value
        for name, value in os.environ.items()
        if not name.startswith("REPRO_")
    }
    env["PYTHONPATH"] = "src"
    env["REPRO_CACHE_DIR"] = cache_dir
    return env


def _run_driver(env: dict, label: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", _DRIVER],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"[fault-smoke] {label} run failed "
            f"(exit {result.returncode}):\n{result.stderr}"
        )
    lines = [
        line
        for line in result.stdout.splitlines()
        if not line.startswith("[perf_counters]")
    ]
    return "\n".join(lines) + "\n"


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="fault-smoke-") as tmp:
        clean_env = _base_env(os.path.join(tmp, "clean"))
        faulted_env = _base_env(os.path.join(tmp, "faulted"))
        faulted_env.update(
            REPRO_FAULTS=_FAULTS,
            # Far beyond the timeout budget: an unkilled hang would blow
            # the subprocess timeout instead of passing silently.
            REPRO_FAULT_HANG_SECONDS="600",
            REPRO_TIMEOUT="15",
            REPRO_MAX_RETRIES="3",
        )

        clean = _run_driver(clean_env, "clean")
        faulted = _run_driver(faulted_env, "faulted")
        if clean != faulted:
            print("[fault-smoke] MISMATCH between clean and faulted reports")
            sys.stdout.writelines(
                difflib.unified_diff(
                    clean.splitlines(keepends=True),
                    faulted.splitlines(keepends=True),
                    fromfile="clean",
                    tofile="faulted",
                )
            )
            return 1
        print("[fault-smoke] clean and faulted reports identical")

        journals = glob.glob(
            os.path.join(tmp, "faulted", "journals", "*.jsonl")
        )
        if len(journals) != 1:
            print(f"[fault-smoke] expected 1 journal, found {journals}")
            return 1
        entries = []
        with open(journals[0]) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
        statuses = {entry["status"] for entry in entries}
        completed = {
            entry["job_key"]
            for entry in entries
            if entry["status"] == "completed"
        }
        failures = 0
        if "timeout" not in statuses:
            print("[fault-smoke] journal records no timeout kill")
            failures += 1
        if "retry" not in statuses:
            print("[fault-smoke] journal records no retries")
            failures += 1
        if len(completed) != _JOB_COUNT:
            print(
                f"[fault-smoke] journal records {len(completed)} completed "
                f"jobs, expected {_JOB_COUNT}"
            )
            failures += 1
        if failures:
            for entry in entries:
                print(f"[fault-smoke]   {entry}")
            return 1
        print(
            f"[fault-smoke] journal: {len(completed)} jobs completed, "
            f"statuses seen: {sorted(statuses)}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
