#!/usr/bin/env python3
"""Summarise observability output files (metrics and trace JSONL).

Usage::

    python scripts/report_metrics.py --metrics metrics.jsonl
    python scripts/report_metrics.py --trace trace.jsonl
    python scripts/report_metrics.py --metrics m.jsonl --trace t.jsonl

``--metrics`` aggregates the per-run snapshots written by
``--metrics-out`` (one JSON object per line, counters under ``metrics``)
into a per-allocator matching-efficiency table: requests exposed, phase-1
winners, input-port-constraint blocks, phase-2 kills, achieved and maximal
matching size, and the derived efficiency/kill-rate ratios — the paper's
Section 2 story straight from measured counters.

``--trace`` reads a flit-event trace written by ``--trace`` (one event per
line: cycle, pid, flit, router, stage, vc, vin) and reports per-stage event
counts plus the distribution of per-packet inject-to-eject latency over
fully traced packets.

Degraded inputs degrade the report, never crash it, and every partial
outcome has a *named* nonzero exit code so callers can branch on it:
``EXIT_MISSING_FILE`` (3) for an absent/unreadable input,
``EXIT_EMPTY`` (4) for a file with no records, and
``EXIT_NO_RUNNER_SECTION`` (5) for a metrics JSONL written before
``execute_spec`` published sweep-level runner/engine counters (the table
still prints; the exit code flags the missing section).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

# Allow running straight from a checkout without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.probes import FIELDS  # noqa: E402
from repro.obs.trace import STAGES  # noqa: E402

#: Named exit codes (beyond 0 = full report): callers branch on these
#: instead of parsing stderr.
EXIT_OK = 0
#: An input file does not exist or cannot be read.
EXIT_MISSING_FILE = 3
#: An input file was read but held no records.
EXIT_EMPTY = 4
#: Metrics records exist but the sweep-level runner/engine section
#: (``kind == "execution_stats"`` lines from ``execute_spec``) is absent
#: — an older metrics JSONL.  The probe table still prints.
EXIT_NO_RUNNER_SECTION = 5


class ReportError(Exception):
    """A degraded-input condition with its named exit code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


def _read_jsonl(path: Path) -> list[dict]:
    records = []
    try:
        handle = open(path)
    except OSError as exc:
        raise ReportError(
            EXIT_MISSING_FILE,
            f"cannot read {path}: {exc.strerror or exc}",
        ) from None
    with handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not valid JSON ({exc})")
    return records


def _fmt_table(headers: list[str], rows: list[list[str]]) -> str:
    cells = [headers] + rows
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _runner_section(stats_records: list[dict]) -> str | None:
    """Engine attribution from the sweep-level ``execution_stats`` lines:
    which backend ran each job, and how many cycles the array kernel
    executed (the vectorized engine's share of the stepping work)."""
    if not stats_records:
        return None
    totals: dict[str, float] = defaultdict(float)
    for rec in stats_records:
        for name, value in rec.get("metrics", {}).items():
            if isinstance(value, (int, float)):
                totals[name] += value
    lines = [f"Runner execution ({len(stats_records)} sweep(s)):"]
    prefix = "runner_engine_jobs_"
    engines = {
        name[len(prefix):]: int(count)
        for name, count in totals.items()
        if name.startswith(prefix)
    }
    if engines:
        lines.append("  jobs by engine: " + ", ".join(
            f"{engine}={count}" for engine, count in sorted(engines.items())))
    kernel_cycles = int(totals.get("runner_vec_kernel_cycles", 0))
    if kernel_cycles:
        lines.append(f"  vectorized kernel cycles: {kernel_cycles}")
    jobs = int(totals.get("runner_jobs_run", 0))
    hits = int(totals.get("runner_cache_hits", 0))
    lines.append(f"  jobs run: {jobs} | cache hits: {hits} | "
                 f"wall: {totals.get('runner_wall_seconds', 0.0):.2f}s")
    return "\n".join(lines)


def summarize_metrics(path: Path) -> tuple[str, int]:
    """Aggregate metrics snapshots per allocator and render the table.

    Returns the report text plus a named exit status: ``EXIT_EMPTY`` for
    a file with no records, ``EXIT_NO_RUNNER_SECTION`` when the probe
    table prints but the sweep-level runner/engine lines are absent
    (older metrics file), ``EXIT_OK`` otherwise.
    """
    # Sweep-level runner counter lines (retries/cancellations/resumes,
    # per-engine job counts) published by execute_spec are not per-run
    # probe snapshots; they get their own section below the table.
    all_records = _read_jsonl(path)
    if not all_records:
        return f"{path}: no metrics records", EXIT_EMPTY
    stats_records = [
        rec for rec in all_records if rec.get("kind") == "execution_stats"
    ]
    records = [
        rec for rec in all_records if rec.get("kind") != "execution_stats"
    ]
    if not records:
        runner = _runner_section(stats_records)
        header = f"{path}: no per-run metrics records"
        return (f"{header}\n\n{runner}" if runner else header), EXIT_OK
    by_alloc: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    runs: dict[str, int] = defaultdict(int)
    for rec in records:
        metrics = rec.get("metrics", {})
        label = str(rec.get("allocator", "?"))
        k = rec.get("virtual_inputs")
        if k and int(k) > 1:
            label += f" (k={k})"
        runs[label] += 1
        for field in FIELDS:
            by_alloc[label][field] += int(metrics.get(field, 0))

    headers = [
        "allocator", "runs", "requests", "phase1", "blocks", "kills",
        "grants", "max match", "efficiency", "kill rate",
    ]
    rows = []
    for label in sorted(by_alloc):
        m = by_alloc[label]
        eff = m["sa_grants"] / m["sa_max_matching"] if m["sa_max_matching"] else 1.0
        kr = (
            m["sa_phase2_kills"] / m["sa_phase1_winners"]
            if m["sa_phase1_winners"]
            else 0.0
        )
        rows.append(
            [
                label,
                str(runs[label]),
                str(m["sa_requests"]),
                str(m["sa_phase1_winners"]),
                str(m["sa_input_port_blocks"]),
                str(m["sa_phase2_kills"]),
                str(m["sa_grants"]),
                str(m["sa_max_matching"]),
                f"{eff:.4f}",
                f"{kr:.4f}",
            ]
        )
    out = (
        f"Allocator matching telemetry ({len(records)} run(s) in {path}):\n"
        + _fmt_table(headers, rows)
    )
    runner = _runner_section(stats_records)
    if runner is None:
        out += (
            f"\n\n{path}: no runner/engine section (no execution_stats "
            "lines — written before sweep-level counters existed?); "
            "matching table above is complete"
        )
        return out, EXIT_NO_RUNNER_SECTION
    return f"{out}\n\n{runner}", EXIT_OK


def summarize_trace(path: Path) -> tuple[str, int]:
    """Per-stage event counts and end-to-end latency over traced packets."""
    events = _read_jsonl(path)
    if not events:
        return f"{path}: no trace events", EXIT_EMPTY
    stage_counts: dict[str, int] = defaultdict(int)
    inject_cycle: dict[int, int] = {}
    eject_cycle: dict[int, int] = {}
    for ev in events:
        stage = ev.get("stage", "?")
        stage_counts[stage] += 1
        pid = ev.get("pid")
        if stage == "inject":
            c = inject_cycle.get(pid)
            if c is None or ev["cycle"] < c:
                inject_cycle[pid] = ev["cycle"]
        elif stage == "eject":
            c = eject_cycle.get(pid)
            if c is None or ev["cycle"] > c:
                eject_cycle[pid] = ev["cycle"]

    lines = [f"Flit trace summary ({len(events)} events in {path}):"]
    for stage in STAGES:
        if stage in stage_counts:
            lines.append(f"  {stage:>7s}: {stage_counts[stage]}")
    for stage in sorted(set(stage_counts) - set(STAGES)):
        lines.append(f"  {stage:>7s}: {stage_counts[stage]}")

    latencies = sorted(
        eject_cycle[pid] - inject_cycle[pid]
        for pid in inject_cycle
        if pid in eject_cycle
    )
    if latencies:
        def pct(q: float) -> int:
            idx = min(len(latencies) - 1, round(q / 100 * (len(latencies) - 1)))
            return latencies[idx]

        lines.append(
            f"  packets fully traced: {len(latencies)} | "
            f"inject->eject latency p50/p95/p99: "
            f"{pct(50)}/{pct(95)}/{pct(99)} cycles"
        )
    return "\n".join(lines), EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--metrics", metavar="PATH", help="metrics JSONL file")
    parser.add_argument("--trace", metavar="PATH", help="flit-trace JSONL file")
    args = parser.parse_args(argv)
    if not args.metrics and not args.trace:
        parser.error("give --metrics and/or --trace")
    sections = []
    status = EXIT_OK
    try:
        if args.metrics:
            text, code = summarize_metrics(Path(args.metrics))
            sections.append(text)
            status = max(status, code)
        if args.trace:
            text, code = summarize_trace(Path(args.trace))
            sections.append(text)
            status = max(status, code)
    except ReportError as exc:
        if sections:
            print("\n\n".join(sections))
        print(f"error: {exc} (exit {exc.code})", file=sys.stderr)
        return exc.code
    print("\n\n".join(sections))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
