#!/usr/bin/env python3
"""Read the repo's perf trajectory (every BENCH_*.json) and guard it.

Each perf PR leaves a ``BENCH_<tag>.json`` behind — activity-gated
stepping (PR 2), observability overhead (PR 3), the vectorized engine
(PR 7) — and together they form the repo's performance *trajectory*.
This script is the one reader of that trajectory:

* ``python scripts/bench_report.py`` — merge every BENCH file into one
  aligned table (benchmark x allocator x load, all recorded metrics);
* ``--json`` — the same merged view as a JSON document (for tooling);
* ``--check`` — evaluate the regression guards below and exit nonzero
  (``EXIT_REGRESSION``) if any recorded value has slipped past its
  floor/ceiling, so CI fails the moment a perf PR regresses a prior
  PR's headline number instead of whenever someone happens to re-run
  the benchmark by hand.

Guards are *floors*, not equalities: benchmarks re-recorded on faster
or slower machines shift absolute seconds, but the recorded ratios
(speedups, overheads) must stay on the right side of the line each PR
claimed.  Exit codes are named: 0 ok, ``EXIT_NO_BENCH_FILES`` (3) when
no BENCH_*.json exists, ``EXIT_BAD_FILE`` (4) for unreadable/invalid
files, ``EXIT_REGRESSION`` (5) for a tripped guard.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

EXIT_OK = 0
#: No BENCH_*.json files found at the repo root.
EXIT_NO_BENCH_FILES = 3
#: A BENCH file exists but cannot be parsed into the expected shape.
EXIT_BAD_FILE = 4
#: At least one trajectory guard tripped (--check).
EXIT_REGRESSION = 5


@dataclass(frozen=True)
class Guard:
    """One trajectory invariant: a recorded metric vs its floor/ceiling."""

    file: str  # BENCH file stem, e.g. "BENCH_PR2"
    allocator: str
    load: str
    metric: str
    #: "min" = value must stay >= threshold (a speedup floor);
    #: "max" = value must stay <= threshold (an overhead ceiling).
    mode: str
    threshold: float
    claim: str  # what the PR claimed, for the failure message


#: The trajectory guards, one per perf PR's headline claim.  Thresholds
#: deliberately sit well below the recorded values (speedups) or above
#: them (overheads): they catch *regressions*, not benchmark noise.
GUARDS = (
    Guard(
        "BENCH_PR2", "input_first", "0.05", "speedup", "min", 1.1,
        "activity-gated stepping speeds up low-load runs (recorded 1.351x)",
    ),
    Guard(
        "BENCH_PR3", "input_first", "0.05", "off_overhead_vs_pre_pr", "max", 0.05,
        "observability off costs <= 5% vs pre-obs baseline (recorded 2.2%)",
    ),
    Guard(
        "BENCH_PR3", "vix", "0.05", "off_overhead_vs_pre_pr", "max", 0.05,
        "observability off costs <= 5% vs pre-obs baseline (recorded 0.9%)",
    ),
    Guard(
        "BENCH_PR7", "input_first", "1.0", "vectorized_speedup_vs_dense", "min", 2.0,
        "vectorized engine >= 2x dense at saturation (recorded 5.268x)",
    ),
    Guard(
        "BENCH_PR7", "vix", "1.0", "vectorized_speedup_vs_dense", "min", 2.0,
        "vectorized engine >= 2x dense at saturation (recorded 4.664x)",
    ),
    # PR 9 recorded its baseline on a 1-core machine, where neither the
    # serial round-robin nor the worker processes can win wall-clock;
    # the claim being guarded is therefore an *overhead ceiling*: the
    # whole partition apparatus (domain holes, cut links, quiescence
    # reduction, epoch barriers + pickled link traffic for workers) must
    # stay within a modest constant factor of monolithic dense stepping,
    # so that on multi-core machines the per-domain parallelism is pure
    # upside rather than clawing back a Python-side loss.
    Guard(
        "BENCH_PR9", "input_first", "1.0",
        "partitioned_serial_speedup_vs_dense", "min", 0.7,
        "partitioned serial stays within ~1.4x of dense on 32x32 "
        "(recorded 0.947x on a 1-core recorder)",
    ),
    Guard(
        "BENCH_PR9", "vix", "1.0",
        "partitioned_serial_speedup_vs_dense", "min", 0.7,
        "partitioned serial stays within ~1.4x of dense on 32x32 "
        "(recorded 1.013x on a 1-core recorder)",
    ),
    Guard(
        "BENCH_PR9", "input_first", "1.0",
        "partitioned_workers_speedup_vs_dense", "min", 0.6,
        "epoch-synchronized workers stay within ~1.7x of dense on 32x32 "
        "(recorded 0.923x on a 1-core recorder, where IPC is pure cost)",
    ),
    Guard(
        "BENCH_PR9", "vix", "1.0",
        "partitioned_workers_speedup_vs_dense", "min", 0.6,
        "epoch-synchronized workers stay within ~1.7x of dense on 32x32 "
        "(recorded 0.990x on a 1-core recorder, where IPC is pure cost)",
    ),
    Guard(
        "BENCH_PR10", "input_first", "1.0",
        "vectorized_domains_serial_speedup_vs_gated_domains", "min", 2.0,
        "vectorized domains >= 2x gated domains at saturation on the "
        "2x2-partitioned 16x16 cmesh (recorded 3.021x)",
    ),
    Guard(
        "BENCH_PR10", "vix", "1.0",
        "vectorized_domains_serial_speedup_vs_gated_domains", "min", 2.0,
        "vectorized domains >= 2x gated domains at saturation on the "
        "2x2-partitioned 16x16 cmesh (recorded 2.935x)",
    ),
    Guard(
        "BENCH_PR10", "input_first", "1.0",
        "vectorized_domains_workers_speedup_vs_gated_domains", "min", 1.5,
        "vectorized domains keep their edge under epoch-synchronized "
        "workers (recorded 2.710x; the barrier IPC is engine-independent)",
    ),
    Guard(
        "BENCH_PR10", "vix", "1.0",
        "vectorized_domains_workers_speedup_vs_gated_domains", "min", 1.5,
        "vectorized domains keep their edge under epoch-synchronized "
        "workers (recorded 2.776x; the barrier IPC is engine-independent)",
    ),
)


def find_bench_files(root: Path) -> list[Path]:
    """Every BENCH_*.json at the repo root, sorted by name (PR order)."""
    return sorted(root.glob("BENCH_*.json"))


def load_bench(path: Path) -> dict:
    """Parse one BENCH file, validating the shared trajectory shape."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if not isinstance(data, dict) or not isinstance(data.get("results"), dict):
        raise SystemExit(
            f"error: {path} has no 'results' section "
            f"(exit {EXIT_BAD_FILE}: not a trajectory benchmark file)"
        )
    return data


def merge_trajectory(files: list[Path]) -> dict:
    """One document: BENCH stem -> {meta, rows: [..flat rows..]}."""
    merged: dict = {}
    for path in files:
        data = load_bench(path)
        rows = []
        for allocator, loads in sorted(data["results"].items()):
            if not isinstance(loads, dict):
                continue
            for load, metrics in sorted(loads.items(), key=lambda kv: float(kv[0])):
                if not isinstance(metrics, dict):
                    continue
                row = {"allocator": allocator, "load": load}
                row.update(
                    {
                        k: v
                        for k, v in metrics.items()
                        if isinstance(v, (int, float))
                    }
                )
                rows.append(row)
        merged[path.stem] = {
            "benchmark": data.get("benchmark", ""),
            "python": data.get("python", ""),
            "repeats": data.get("repeats"),
            "rows": rows,
        }
    return merged


def format_trajectory(merged: dict) -> str:
    """The merged trajectory as aligned per-file tables."""
    blocks = []
    for stem, entry in merged.items():
        rows = entry["rows"]
        if not rows:
            blocks.append(f"{stem}: no result rows")
            continue
        metrics = sorted({k for row in rows for k in row} - {"allocator", "load"})
        headers = ["allocator", "load"] + metrics
        cells = [headers]
        for row in rows:
            cells.append(
                [str(row["allocator"]), str(row["load"])]
                + [
                    f"{row[m]:.3f}" if isinstance(row.get(m), float) else str(row.get(m, "-"))
                    for m in metrics
                ]
            )
        widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
        lines = [f"{stem}  ({entry['benchmark']})"]
        for i, row in enumerate(cells):
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths)).rstrip()
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def check_guards(merged: dict) -> list[str]:
    """Evaluate every guard; returns the failure messages (empty = pass)."""
    failures = []
    for guard in GUARDS:
        entry = merged.get(guard.file)
        if entry is None:
            # A deleted benchmark is a trajectory regression too: the
            # guard's claim can no longer be verified.
            failures.append(
                f"{guard.file}.json is missing (guards: {guard.claim})"
            )
            continue
        value = None
        for row in entry["rows"]:
            if row["allocator"] == guard.allocator and row["load"] == guard.load:
                value = row.get(guard.metric)
                break
        if not isinstance(value, (int, float)):
            failures.append(
                f"{guard.file}: no {guard.metric} recorded for "
                f"{guard.allocator}@{guard.load} (guards: {guard.claim})"
            )
            continue
        ok = value >= guard.threshold if guard.mode == "min" else value <= guard.threshold
        if not ok:
            op = ">=" if guard.mode == "min" else "<="
            failures.append(
                f"{guard.file}: {guard.allocator}@{guard.load} "
                f"{guard.metric}={value} violates {op} {guard.threshold} "
                f"({guard.claim})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=str(Path(__file__).resolve().parent.parent),
        help="directory holding the BENCH_*.json files (default: repo root)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the merged trajectory as JSON"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="evaluate the regression guards; nonzero exit on any violation",
    )
    args = parser.parse_args(argv)

    files = find_bench_files(Path(args.root))
    if not files:
        print(
            f"error: no BENCH_*.json files under {args.root} "
            f"(exit {EXIT_NO_BENCH_FILES})",
            file=sys.stderr,
        )
        return EXIT_NO_BENCH_FILES
    try:
        merged = merge_trajectory(files)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return EXIT_BAD_FILE

    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
    else:
        print(format_trajectory(merged))

    if args.check:
        failures = check_guards(merged)
        if failures:
            print(
                f"\ntrajectory check FAILED ({len(failures)} guard(s)):",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return EXIT_REGRESSION
        print(f"\ntrajectory check passed ({len(GUARDS)} guard(s))")
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
