#!/usr/bin/env python
"""PR 7 perf-trajectory benchmark: engine backends head to head.

Extends ``bench_pr2.py`` (stepping-mode trajectory) to the engine registry:
the same 8x8-mesh uniform-traffic points are timed under the three
registered backends —

* ``dense``      — object stepping, every component visited every cycle;
* ``gated``      — object stepping with activity gating;
* ``vectorized`` — the SoA numpy kernel (delegates to ``gated`` below its
  low-activity threshold, which is exactly the shipped behaviour and what
  the ≤20%-load "no regression" requirement is about).

All engines run the same seed, windows, and injector draw stream, and are
byte-identical by contract (``tests/sim/test_vec_equivalence.py``), so the
comparison isolates stepping cost.

Repeats are **interleaved** (round-robin over engines) rather than
back-to-back, and speedups are the *median of per-round ratios*: the runs
inside one round are temporally adjacent, so slow spells on a shared
machine hit both engines of a ratio alike and cancel, where a ratio of
per-engine minimums taken minutes apart would not.  Absolute times are
still reported as per-engine minimums.

Results go to ``BENCH_PR7.json``.  ``--check`` runs only the saturation
point and fails (exit 1) unless ``vectorized`` beats ``dense`` by at least
``--threshold`` (default 2.0x — well under the ~5x recorded in the
committed baseline, so CI tolerates slow shared runners without ever
accepting a vectorized engine that lost its reason to exist).

PR 9 additions: ``--topology``/``--size`` scale the fabric beyond the
paper's 8x8 mesh (``--size`` is the router-grid edge; terminals follow the
topology's concentration), ``--warmup`` exposes the warmup window, and
``--partition`` times the chiplet-partitioned engine (serial round-robin
and 2-worker epoch-synchronized modes) against monolithic dense/gated on
the requested fabric, recording the headline to ``BENCH_PR9.json``.

PR 10 addition: ``--partition-vec`` times vectorized (SoA-kernel) domains
against gated (object) domains on the same partitioned fabric, serial and
worker modes alike, recording the headline to ``BENCH_PR10.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.network.config import NetworkConfig, paper_config  # noqa: E402
from repro.network.links import PartitionConfig  # noqa: E402
from repro.registry import topologies  # noqa: E402
from repro.sim.engine import run_simulation  # noqa: E402

#: Uniform-traffic saturation of the paper's 8x8 mesh baseline (packets per
#: node per cycle); sweep loads are expressed as fractions of it.
SATURATION_RATE = 0.105

#: Fractions of saturation: two gated-friendly low-load points, one
#: mid-load point, the saturation point the 5x target is defined at, and
#: one over-saturated point.
LOADS = (0.05, 0.2, 0.5, 1.0, 1.2)
ALLOCATORS = ("input_first", "vix")
ENGINES = ("dense", "gated", "vectorized")


#: Terminals per router for the registered concentrated topologies.
CONCENTRATION = {"cmesh": 4, "fbfly": 4}


def _config(allocator: str, topology: str = "mesh", size: int = 8) -> NetworkConfig:
    """The paper configuration scaled to a ``size`` x ``size`` router grid."""
    name = topologies.canonical(topology)
    terminals = size * size * CONCENTRATION.get(name, 1)
    return dataclasses.replace(
        paper_config(allocator, topology=name), num_terminals=terminals
    )


def _run_once(
    allocator: str,
    load: float,
    engine: str | None,
    measure: int,
    *,
    topology: str = "mesh",
    size: int = 8,
    warmup: int = 1000,
    partition: PartitionConfig | None = None,
    drain_limit: int | None = None,
) -> float:
    cfg = _config(allocator, topology, size)
    rate = round(load * SATURATION_RATE, 6)
    t0 = time.perf_counter()
    run_simulation(
        cfg,
        injection_rate=rate,
        seed=1,
        warmup=warmup,
        measure=measure,
        engine=engine,
        partition=partition,
        drain_limit=drain_limit,
    )
    return time.perf_counter() - t0


def _interleaved(
    allocator: str, load: float, engines: tuple[str, ...], repeats: int,
    measure: int, **kwargs,
) -> dict[str, list[float]]:
    """``repeats`` timings per engine, measured round-robin."""
    times: dict[str, list[float]] = {engine: [] for engine in engines}
    for _ in range(repeats):
        for engine in engines:
            times[engine].append(
                _run_once(allocator, load, engine, measure, **kwargs)
            )
    return times


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _speedup(times: dict[str, list[float]], base: str, new: str) -> float:
    """Median of the per-round ``base``/``new`` ratios."""
    return _median([b / n for b, n in zip(times[base], times[new])])


def write_baseline(path: Path, repeats: int, measure: int, **kwargs) -> None:
    results: dict[str, dict] = {}
    for allocator in ALLOCATORS:
        results[allocator] = {}
        for load in LOADS:
            times = _interleaved(allocator, load, ENGINES, repeats, measure, **kwargs)
            entry = {
                f"{engine}_s": round(min(times[engine]), 4) for engine in ENGINES
            }
            entry["vectorized_speedup_vs_dense"] = round(
                _speedup(times, "dense", "vectorized"), 3
            )
            entry["vectorized_speedup_vs_gated"] = round(
                _speedup(times, "gated", "vectorized"), 3
            )
            results[allocator][str(load)] = entry
            print(f"{allocator:12s} load={load}: " + " ".join(
                f"{k}={v}" for k, v in entry.items()))
    payload = {
        "benchmark": "8x8 mesh, uniform traffic, seed 1, warmup 1000, "
                     f"measure {measure}, single process, no cache; times "
                     "are per-engine minimums over interleaved rounds, "
                     "speedups are medians of per-round ratios",
        "saturation_rate": SATURATION_RATE,
        "loads_are_fractions_of_saturation": True,
        "repeats": repeats,
        "python": platform.python_version(),
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def bench_partition(
    path: Path,
    repeats: int,
    measure: int,
    *,
    topology: str = "mesh",
    size: int = 32,
    warmup: int = 1000,
    link_latency: int = 4,
    workers: int = 2,
) -> None:
    """PR 9 headline: chiplet-partitioned engine vs the monolithic engines.

    Times four executions of the same saturated fabric — monolithic dense,
    monolithic gated, partitioned serial round-robin, and partitioned with
    ``workers`` epoch-synchronized worker processes — interleaved per
    round like the engine benchmark.  Domains are 8x8-router chiplets
    (``size/8`` x ``size/8`` grid) joined by credit links of the given
    latency; results are identical across all four by the equivalence
    contract, so the timings isolate orchestration cost.
    """
    grid = max(2, size // 8)
    dims = (grid, grid)
    base = dict(topology=topology, size=size, warmup=warmup)
    serial = PartitionConfig(dims=dims, link_latency=link_latency)
    forked = PartitionConfig(dims=dims, link_latency=link_latency, workers=workers)
    modes: dict[str, dict] = {
        "dense": dict(engine="dense", partition=None),
        "gated": dict(engine="gated", partition=None),
        "partitioned_serial": dict(engine=None, partition=serial),
        "partitioned_workers": dict(engine=None, partition=forked),
    }
    results: dict[str, dict] = {}
    for allocator in ALLOCATORS:
        times: dict[str, list[float]] = {mode: [] for mode in modes}
        for _ in range(repeats):
            for mode, sel in modes.items():
                # Saturation probe (drain_limit=0): an oversaturated fabric
                # never fully drains, so a drain phase would only time the
                # drain budget, identically in every mode.
                times[mode].append(
                    _run_once(
                        allocator, 1.0, sel["engine"], measure,
                        partition=sel["partition"], drain_limit=0, **base,
                    )
                )
        entry = {f"{mode}_s": round(min(times[mode]), 4) for mode in modes}
        entry["partitioned_serial_speedup_vs_dense"] = round(
            _speedup(times, "dense", "partitioned_serial"), 3
        )
        entry["partitioned_workers_speedup_vs_dense"] = round(
            _speedup(times, "dense", "partitioned_workers"), 3
        )
        results[allocator] = {"1.0": entry}
        print(f"{allocator:12s} {size}x{size} {topology}: " + " ".join(
            f"{k}={v}" for k, v in entry.items()))
    payload = {
        "benchmark": f"{size}x{size} {topology}, uniform traffic at the 8x8 "
                     f"saturation rate, seed 1, warmup {warmup}, measure "
                     f"{measure}, {dims[0]}x{dims[1]} chiplet partition, "
                     f"link latency {link_latency}, {workers} worker "
                     "process(es); times are per-mode minimums over "
                     "interleaved rounds, speedups are medians of "
                     "per-round ratios",
        "saturation_rate": SATURATION_RATE,
        "loads_are_fractions_of_saturation": True,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def bench_partition_vec(
    path: Path,
    repeats: int,
    measure: int,
    *,
    topology: str = "cmesh",
    size: int = 16,
    warmup: int = 1000,
    link_latency: int = 4,
    workers: int = 2,
) -> None:
    """PR 10 headline: vectorized domains vs gated domains, partitioned.

    Times the same saturated 2x2-partitioned fabric with object (gated)
    and SoA-kernel (vectorized) domains, in serial round-robin and
    ``workers``-process epoch-synchronized modes, interleaved per round.
    Results are identical across all four by the equivalence contract
    (``check_partition.py --vectorized``), so the timings isolate
    per-domain stepping cost.
    """
    dims = (2, 2)
    base = dict(topology=topology, size=size, warmup=warmup)

    def pc(domain_engine: str, nworkers: int) -> PartitionConfig:
        return PartitionConfig(
            dims=dims, link_latency=link_latency,
            domain_engine=domain_engine, workers=nworkers,
        )

    modes: dict[str, PartitionConfig] = {
        "gated_domains_serial": pc("gated", 1),
        "gated_domains_workers": pc("gated", workers),
        "vectorized_domains_serial": pc("vectorized", 1),
        "vectorized_domains_workers": pc("vectorized", workers),
    }
    results: dict[str, dict] = {}
    for allocator in ALLOCATORS:
        times: dict[str, list[float]] = {mode: [] for mode in modes}
        for _ in range(repeats):
            for mode, partition in modes.items():
                times[mode].append(
                    _run_once(
                        allocator, 1.0, None, measure,
                        partition=partition, drain_limit=0, **base,
                    )
                )
        entry = {f"{mode}_s": round(min(times[mode]), 4) for mode in modes}
        entry["vectorized_domains_serial_speedup_vs_gated_domains"] = round(
            _speedup(times, "gated_domains_serial", "vectorized_domains_serial"), 3
        )
        entry["vectorized_domains_workers_speedup_vs_gated_domains"] = round(
            _speedup(times, "gated_domains_workers", "vectorized_domains_workers"), 3
        )
        results[allocator] = {"1.0": entry}
        print(f"{allocator:12s} {size}x{size} {topology}: " + " ".join(
            f"{k}={v}" for k, v in entry.items()))
    payload = {
        "benchmark": f"{size}x{size} {topology}, uniform traffic at the 8x8 "
                     f"saturation rate, seed 1, warmup {warmup}, measure "
                     f"{measure}, {dims[0]}x{dims[1]} chiplet partition, "
                     f"link latency {link_latency}, gated vs vectorized "
                     f"domains, serial and {workers}-worker modes; times "
                     "are per-mode minimums over interleaved rounds, "
                     "speedups are medians of per-round ratios",
        "saturation_rate": SATURATION_RATE,
        "loads_are_fractions_of_saturation": True,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def check_saturation(threshold: float, repeats: int, measure: int, **kwargs) -> int:
    """CI smoke: vectorized must beat dense at the saturation point."""
    failed = False
    for allocator in ALLOCATORS:
        times = _interleaved(allocator, 1.0, ("dense", "vectorized"),
                             repeats, measure, **kwargs)
        speedup = _speedup(times, "dense", "vectorized")
        status = "OK" if speedup >= threshold else "FAIL"
        print(f"{allocator:12s} load=1.0: dense={min(times['dense']):.3f}s "
              f"vectorized={min(times['vectorized']):.3f}s "
              f"speedup={speedup:.2f}x (floor {threshold}x) {status}")
        failed |= speedup < threshold
    if failed:
        print("FAIL: vectorized engine does not beat dense at saturation")
        return 1
    print("OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_PR7.json", type=Path,
                    help="output path for the baseline JSON")
    ap.add_argument("--check", action="store_true",
                    help="smoke-check only: vectorized vs dense at load 1.0")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="minimum vectorized-over-dense speedup accepted by "
                         "--check (default 2.0)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="interleaved best-of-N repeats per point (default 3)")
    ap.add_argument("--measure", type=int, default=3000,
                    help="measurement window in cycles (default 3000)")
    ap.add_argument("--warmup", type=int, default=1000,
                    help="warmup window in cycles (default 1000)")
    ap.add_argument("--topology", default="mesh",
                    help="fabric topology (registry name; default mesh)")
    ap.add_argument("--size", type=int, default=None,
                    help="router-grid edge (default 8; 32 with --partition); "
                         "terminals follow the topology's concentration")
    ap.add_argument("--partition", action="store_true",
                    help="PR 9 mode: time the chiplet-partitioned engine "
                         "(serial and worker) against monolithic dense/gated "
                         "on the requested fabric; writes BENCH_PR9.json")
    ap.add_argument("--partition-vec", action="store_true",
                    help="PR 10 mode: time vectorized domains against gated "
                         "domains on a 2x2-partitioned fabric (default 16x16 "
                         "cmesh), serial and worker; writes BENCH_PR10.json")
    ap.add_argument("--link-latency", type=int, default=4,
                    help="inter-chip link latency for --partition (default 4)")
    ap.add_argument("--workers", type=int, default=2,
                    help="worker processes for --partition (default 2)")
    args = ap.parse_args()
    scale = dict(topology=args.topology, warmup=args.warmup)
    if args.partition_vec:
        bench_partition_vec(
            Path("BENCH_PR10.json") if args.out == Path("BENCH_PR7.json") else args.out,
            args.repeats,
            args.measure,
            topology="cmesh" if args.topology == "mesh" else args.topology,
            size=args.size if args.size is not None else 16,
            warmup=args.warmup,
            link_latency=args.link_latency,
            workers=args.workers,
        )
        return 0
    if args.partition:
        bench_partition(
            Path("BENCH_PR9.json") if args.out == Path("BENCH_PR7.json") else args.out,
            args.repeats,
            args.measure,
            size=args.size if args.size is not None else 32,
            link_latency=args.link_latency,
            workers=args.workers,
            **scale,
        )
        return 0
    scale["size"] = args.size if args.size is not None else 8
    if args.check:
        return check_saturation(args.threshold, args.repeats, args.measure, **scale)
    write_baseline(args.out, args.repeats, args.measure, **scale)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
