#!/usr/bin/env python
"""PR 7 perf-trajectory benchmark: engine backends head to head.

Extends ``bench_pr2.py`` (stepping-mode trajectory) to the engine registry:
the same 8x8-mesh uniform-traffic points are timed under the three
registered backends —

* ``dense``      — object stepping, every component visited every cycle;
* ``gated``      — object stepping with activity gating;
* ``vectorized`` — the SoA numpy kernel (delegates to ``gated`` below its
  low-activity threshold, which is exactly the shipped behaviour and what
  the ≤20%-load "no regression" requirement is about).

All engines run the same seed, windows, and injector draw stream, and are
byte-identical by contract (``tests/sim/test_vec_equivalence.py``), so the
comparison isolates stepping cost.

Repeats are **interleaved** (round-robin over engines) rather than
back-to-back, and speedups are the *median of per-round ratios*: the runs
inside one round are temporally adjacent, so slow spells on a shared
machine hit both engines of a ratio alike and cancel, where a ratio of
per-engine minimums taken minutes apart would not.  Absolute times are
still reported as per-engine minimums.

Results go to ``BENCH_PR7.json``.  ``--check`` runs only the saturation
point and fails (exit 1) unless ``vectorized`` beats ``dense`` by at least
``--threshold`` (default 2.0x — well under the ~5x recorded in the
committed baseline, so CI tolerates slow shared runners without ever
accepting a vectorized engine that lost its reason to exist).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.network.config import paper_config  # noqa: E402
from repro.sim.engine import run_simulation  # noqa: E402

#: Uniform-traffic saturation of the paper's 8x8 mesh baseline (packets per
#: node per cycle); sweep loads are expressed as fractions of it.
SATURATION_RATE = 0.105

#: Fractions of saturation: two gated-friendly low-load points, one
#: mid-load point, the saturation point the 5x target is defined at, and
#: one over-saturated point.
LOADS = (0.05, 0.2, 0.5, 1.0, 1.2)
ALLOCATORS = ("input_first", "vix")
ENGINES = ("dense", "gated", "vectorized")


def _run_once(allocator: str, load: float, engine: str, measure: int) -> float:
    cfg = paper_config(allocator)
    rate = round(load * SATURATION_RATE, 6)
    t0 = time.perf_counter()
    run_simulation(
        cfg,
        injection_rate=rate,
        seed=1,
        warmup=1000,
        measure=measure,
        engine=engine,
    )
    return time.perf_counter() - t0


def _interleaved(
    allocator: str, load: float, engines: tuple[str, ...], repeats: int,
    measure: int,
) -> dict[str, list[float]]:
    """``repeats`` timings per engine, measured round-robin."""
    times: dict[str, list[float]] = {engine: [] for engine in engines}
    for _ in range(repeats):
        for engine in engines:
            times[engine].append(_run_once(allocator, load, engine, measure))
    return times


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _speedup(times: dict[str, list[float]], base: str, new: str) -> float:
    """Median of the per-round ``base``/``new`` ratios."""
    return _median([b / n for b, n in zip(times[base], times[new])])


def write_baseline(path: Path, repeats: int, measure: int) -> None:
    results: dict[str, dict] = {}
    for allocator in ALLOCATORS:
        results[allocator] = {}
        for load in LOADS:
            times = _interleaved(allocator, load, ENGINES, repeats, measure)
            entry = {
                f"{engine}_s": round(min(times[engine]), 4) for engine in ENGINES
            }
            entry["vectorized_speedup_vs_dense"] = round(
                _speedup(times, "dense", "vectorized"), 3
            )
            entry["vectorized_speedup_vs_gated"] = round(
                _speedup(times, "gated", "vectorized"), 3
            )
            results[allocator][str(load)] = entry
            print(f"{allocator:12s} load={load}: " + " ".join(
                f"{k}={v}" for k, v in entry.items()))
    payload = {
        "benchmark": "8x8 mesh, uniform traffic, seed 1, warmup 1000, "
                     f"measure {measure}, single process, no cache; times "
                     "are per-engine minimums over interleaved rounds, "
                     "speedups are medians of per-round ratios",
        "saturation_rate": SATURATION_RATE,
        "loads_are_fractions_of_saturation": True,
        "repeats": repeats,
        "python": platform.python_version(),
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def check_saturation(threshold: float, repeats: int, measure: int) -> int:
    """CI smoke: vectorized must beat dense at the saturation point."""
    failed = False
    for allocator in ALLOCATORS:
        times = _interleaved(allocator, 1.0, ("dense", "vectorized"),
                             repeats, measure)
        speedup = _speedup(times, "dense", "vectorized")
        status = "OK" if speedup >= threshold else "FAIL"
        print(f"{allocator:12s} load=1.0: dense={min(times['dense']):.3f}s "
              f"vectorized={min(times['vectorized']):.3f}s "
              f"speedup={speedup:.2f}x (floor {threshold}x) {status}")
        failed |= speedup < threshold
    if failed:
        print("FAIL: vectorized engine does not beat dense at saturation")
        return 1
    print("OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_PR7.json", type=Path,
                    help="output path for the baseline JSON")
    ap.add_argument("--check", action="store_true",
                    help="smoke-check only: vectorized vs dense at load 1.0")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="minimum vectorized-over-dense speedup accepted by "
                         "--check (default 2.0)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="interleaved best-of-N repeats per point (default 3)")
    ap.add_argument("--measure", type=int, default=3000,
                    help="measurement window in cycles (default 3000)")
    args = ap.parse_args()
    if args.check:
        return check_saturation(args.threshold, args.repeats, args.measure)
    write_baseline(args.out, args.repeats, args.measure)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
