#!/usr/bin/env python
"""Golden-output check for the experiment-driver refactor.

Runs the CLI for the given experiments against two source trees — the
current one and a reference checkout — and requires the reports to be
byte-identical after stripping the ``[perf_counters]`` footer (which
reports wall-clock seconds and so can never be stable).

Usage::

    python scripts/check_golden.py --ref-src /tmp/ref/src f8 t1

The cache is disabled in both runs so every number is freshly computed
through each tree's own execution path.
"""

from __future__ import annotations

import argparse
import difflib
import os
import subprocess
import sys


def run_cli(src_dir: str, experiment: str) -> str:
    """One experiment's report, with volatile footer lines stripped."""
    env = dict(os.environ, PYTHONPATH=src_dir, REPRO_NO_CACHE="1")
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", experiment],
        capture_output=True,
        text=True,
        env=env,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"{experiment} failed under {src_dir}:\n{result.stderr}"
        )
    lines = [
        line
        for line in result.stdout.splitlines()
        if not line.startswith("[perf_counters]")
    ]
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ref-src",
        required=True,
        help="src/ directory of the reference checkout (the golden tree)",
    )
    parser.add_argument(
        "--src",
        default="src",
        help="src/ directory of the tree under test (default: src)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["f8", "t1"],
        help="experiment ids to compare (default: f8 t1)",
    )
    args = parser.parse_args(argv)

    failures = 0
    for experiment in args.experiments or ["f8", "t1"]:
        golden = run_cli(args.ref_src, experiment)
        current = run_cli(args.src, experiment)
        if current == golden:
            print(f"[golden] {experiment}: identical")
            continue
        failures += 1
        print(f"[golden] {experiment}: MISMATCH")
        sys.stdout.writelines(
            difflib.unified_diff(
                golden.splitlines(keepends=True),
                current.splitlines(keepends=True),
                fromfile=f"golden/{experiment}",
                tofile=f"current/{experiment}",
            )
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
