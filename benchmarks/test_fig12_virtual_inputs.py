"""Bench F12 — regenerate Figure 12 (virtual-input count sweep)."""

from repro.experiments import fig12_virtual_inputs
from repro.experiments.fig12_virtual_inputs import TOPOLOGIES, VC_COUNTS


def test_fig12_virtual_input_sweep(run_once):
    result = run_once(fig12_virtual_inputs.run, seed=1)
    print()
    print(fig12_virtual_inputs.report(result))

    for topo in TOPOLOGIES:
        for vcs in VC_COUNTS:
            # 1:2 VIX beats the no-VIX baseline everywhere...
            assert result.gain(topo, vcs) > 0.0, (topo, vcs)
            # ...and never beats ideal VIX by more than noise.
            assert result.throughput[(topo, vcs, "1:2 VIX")] <= result.throughput[
                (topo, vcs, "ideal VIX")
            ] * 1.05
    # Paper: significant average improvements (21% @ 4 VCs, 16% @ 6 VCs).
    assert result.average_gain(4) > 0.08
    assert result.average_gain(6) > 0.06
    # Paper: VIX with 4 VCs beats 6 VCs without VIX by >10% on the mesh
    # (the 33% buffer-reduction headline); require the win at fast fidelity.
    assert result.buffer_reduction_gain("mesh") > 0.0
