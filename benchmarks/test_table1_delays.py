"""Bench T1 — regenerate Table 1 (router pipeline stage delays)."""

from repro.experiments import table1_delays


def test_table1_router_stage_delays(run_once):
    rows = run_once(table1_delays.run)
    print()
    print(table1_delays.report(rows))

    for row in rows:
        va, sa, xbar = table1_delays.PAPER_VALUES[row.design]
        assert (row.va_ps, row.sa_ps, row.xbar_ps) == (va, sa, xbar)
        # The architectural conclusion: the crossbar never limits cycle time.
        assert not row.xbar_on_critical_path
