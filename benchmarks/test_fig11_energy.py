"""Bench F11 — regenerate Figure 11 (network energy per bit)."""

from repro.experiments import fig11_energy


def test_fig11_energy_per_bit(run_once):
    result = run_once(fig11_energy.run, seed=1)
    print()
    print(fig11_energy.report(result))

    # Paper: total network energy/bit increases ~4% for VIX (bigger xbar).
    overhead = result.vix_total_overhead()
    assert 0.0 < overhead < 0.10
    base = result.breakdowns["input_first"].per_bit_components()
    vix = result.breakdowns["vix"].per_bit_components()
    # Only the crossbar component grows materially.
    assert vix["crossbar"] > base["crossbar"] * 1.3
    for comp in ("buffer", "link"):
        assert abs(vix[comp] / base[comp] - 1.0) < 0.10
