"""Bench T4 — regenerate Table 4 (application-level speedups)."""

from repro.experiments import table4_applications
from repro.manycore.workloads import PAPER_MIX_MPKI


def test_table4_application_speedups(run_once):
    result = run_once(table4_applications.run, seed=1)
    print()
    print(table4_applications.report(result))

    mixes = sorted(PAPER_MIX_MPKI)
    # The catalogue reproduces the paper's per-mix average MPKI exactly.
    for mix in mixes:
        assert abs(result.avg_mpki[mix] - PAPER_MIX_MPKI[mix]) < 0.1
    # Paper: VIX speeds up every mix (avg ~1.05, max 1.07); require a
    # positive average and no mix materially hurt at fast fidelity.
    assert result.average_speedup() > 1.0
    for mix in mixes:
        assert result.speedup(mix) > 0.98, mix
    # Memory-bound mixes benefit at least as much as cache-resident ones.
    assert result.speedup("Mix8") >= result.speedup("Mix1") - 0.02
