"""Bench F8 — regenerate Figure 8 (mesh latency and throughput)."""

from repro.experiments import fig8_mesh


def test_fig8_mesh_latency_and_throughput(run_once):
    result = run_once(fig8_mesh.run, seed=1)
    print()
    print(fig8_mesh.report(result))

    # Paper: VIX improves mesh throughput ~16% over IF; we require the
    # double-digit shape at fast-mode fidelity.
    assert result.throughput_gain("vix") > 0.08
    # Paper: AP gains almost nothing at the network level (+0.3%);
    # it must trail VIX by a clear margin.
    assert result.throughput_gain("augmenting_path") < result.throughput_gain("vix")
    assert result.saturation_flits_per_node("vix") > result.saturation_flits_per_node(
        "augmenting_path"
    )
    # Low-load latency is allocator-insensitive (within a few cycles).
    low_lat = [result.curves[a][0].avg_latency for a in result.curves]
    assert max(low_lat) - min(low_lat) < 5.0
    # At the highest drained load, VIX latency does not exceed IF latency.
    assert result.high_load_latency("vix") <= result.high_load_latency(
        "input_first"
    ) * 1.05
