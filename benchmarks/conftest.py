"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper: it runs the
experiment once inside ``benchmark.pedantic`` (cycle-accurate simulation is
the thing being timed; repetition is pointless), prints the same rows the
paper reports, and asserts the paper's qualitative shape (who wins, by
roughly what factor).

Run lengths default to the FAST preset; set ``REPRO_FULL=1`` for
paper-fidelity windows (slower but tighter numbers).
"""

from __future__ import annotations

import os

import pytest

# Benchmarks time the simulations themselves; serving repeats from the
# on-disk result cache would reduce them to JSON reads.  Opt out unless the
# invoker explicitly set a policy.
os.environ.setdefault("REPRO_NO_CACHE", "1")


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return _run
