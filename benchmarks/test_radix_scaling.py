"""Bench RADIX — extension: the VIX high-radix scaling limit.

Quantifies Section 2.4's caveat ("VIX may not scale to very high radices")
with the calibrated timing models.
"""

from repro.experiments import radix_scaling


def test_radix_scaling_limit(run_once):
    result = run_once(radix_scaling.run)
    print()
    print(radix_scaling.report(result))

    # All three of the paper's topologies fit (radix 5, 8, 10)...
    fits = {p.radix: p.vix_fits for p in result.points}
    assert fits[5] and fits[8] and fits[10]
    # ...and the wire-dominated crossbar takes over shortly beyond.
    limit = result.scaling_limit()
    assert limit is not None and limit <= 14
