"""Bench T3 — regenerate Table 3 (switch-allocator delays)."""

import math

from repro.experiments import table3_allocator_delays


def test_table3_allocator_delays(run_once):
    values = run_once(table3_allocator_delays.run)
    print()
    print(table3_allocator_delays.report(values))

    assert values["input_first"] == 280.0
    assert values["wavefront"] == 390.0  # the paper's 39% overhead
    assert math.isinf(values["augmenting_path"])
