"""Bench ABL — ablation studies for design choices (beyond the paper).

Quantifies each design decision in isolation: the Section 2.3 VC policy,
the input-arbiter pointer policy, the VC partition, the SPAROFLO
alternative, and the virtual-input count.
"""

from repro.experiments import ablations


def test_ablation_studies(run_once):
    result = run_once(ablations.run, seed=1)
    print()
    print(ablations.report(result))
    v = result.values

    # A1: the dimension-aware policy must not lose to naive assignment,
    # and VIX must beat the IF baseline with either policy.
    assert v[("vc_policy", "vix_dimension")] >= v[("vc_policy", "max_credit")] * 0.97
    assert v[("vc_policy", "vix_dimension")] > v[("vc_policy", "if_baseline")]

    # A2: pointer policy is a second-order effect for both schemes.
    for name in ("if", "vix"):
        plain = v[("pointer", f"{name}/plain")]
        on_grant = v[("pointer", f"{name}/on_grant")]
        assert abs(on_grant / plain - 1.0) < 0.10

    # A3: partition is a layout choice, not a throughput one.
    ratio = v[("partition", "interleaved")] / v[("partition", "contiguous")]
    assert 0.95 < ratio < 1.05

    # A4: Section 5's argument — SPAROFLO(static) lands between IF and VIX.
    assert v[("sparoflo", "if")] < v[("sparoflo", "sparoflo_static")]
    assert v[("sparoflo", "sparoflo_static")] < v[("sparoflo", "vix")]

    # A5: throughput is monotone in the virtual-input count.
    ks = [v[("vinputs", f"k={k}")] for k in (1, 2, 3, 6)]
    assert ks == sorted(ks)
    # ...with diminishing returns: k=2 captures most of the k=6 gain.
    assert (ks[1] - ks[0]) > 0.5 * (ks[3] - ks[0]) * 0.8

    # A6: virtual inputs help both separable phase orders.
    assert v[("phase_order", "input_first_vix")] > v[("phase_order", "input_first")]
    assert v[("phase_order", "output_first_vix")] > v[("phase_order", "output_first")]
