"""Bench F10 — regenerate Figure 10 (Packet Chaining comparison)."""

from repro.experiments import fig10_packet_chaining


def test_fig10_packet_chaining_comparison(run_once):
    result = run_once(fig10_packet_chaining.run, seed=1)
    print()
    print(fig10_packet_chaining.report(result))

    pc_gain = result.gain_over_if("packet_chaining")
    vix_gain = result.gain_over_if("vix")
    # Paper: PC improves ~9%, VIX ~16% — both positive, VIX ahead.
    assert pc_gain > 0.02
    assert vix_gain > pc_gain
    # The paper's conclusion: exposing requests beats eliminating them.
    assert result.throughput["vix"] == max(result.throughput.values())
