"""Bench F9 — regenerate Figure 9 (fairness at saturation)."""

from repro.experiments import fig9_fairness


def test_fig9_network_fairness(run_once):
    result = run_once(fig9_fairness.run, seed=1)
    print()
    print(fig9_fairness.report(result))

    # Paper: AP is the most unfair scheme (6.4); VIX the fairest (1.99).
    ap = result.fairness["augmenting_path"]
    vix = result.fairness["vix"]
    assert ap > vix, "AP must be less fair than VIX"
    assert ap == max(result.fairness.values())
    assert vix == min(result.fairness.values())
    # Ratios are physically sensible.
    for value in result.fairness.values():
        assert value >= 1.0
