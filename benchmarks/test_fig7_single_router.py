"""Bench F7 — regenerate Figure 7 (single-router allocation efficiency)."""

from repro.experiments import fig7_single_router


def test_fig7_single_router_efficiency(run_once):
    result = run_once(fig7_single_router.run, seed=1)
    print()
    print(fig7_single_router.report(result))

    for radix in fig7_single_router.RADICES:
        # Paper: "AP above 30% higher throughput than separable IF for all
        # radix configurations, VIX above 25%."
        assert result.gain_over_if(radix, "augmenting_path") > 0.30
        assert result.gain_over_if(radix, "vix") > 0.20
        # Paper: "Both AP and VIX achieve efficiency very close to ideal."
        ideal = result.throughput[(radix, "ideal_vix")]
        assert result.throughput[(radix, "augmenting_path")] > 0.95 * ideal
        assert result.throughput[(radix, "vix")] > 0.80 * ideal
        # Ranking: IF < WF < ideal.
        assert (
            result.throughput[(radix, "input_first")]
            < result.throughput[(radix, "wavefront")]
            <= ideal
        )
