"""Bench TOPO — extension: topology comparison against wiring bounds."""

from repro.experiments import topology_comparison
from repro.experiments.topology_comparison import TOPOLOGIES


def test_topology_comparison(run_once):
    result = run_once(topology_comparison.run, seed=1)
    print()
    print(topology_comparison.report(result))

    for topo in TOPOLOGIES:
        # Nothing beats the wiring bound; VIX always closes some gap.
        assert result.efficiency(topo, "input_first") <= 1.02
        assert result.efficiency(topo, "vix") <= 1.02
        assert result.vix_gain(topo) > 0.0
        assert result.efficiency(topo, "vix") > result.efficiency(topo, "input_first")
    # The torus bound is ~2x the mesh bound (wraparound halves max load).
    assert result.bounds["torus"] > 1.5 * result.bounds["mesh"]
