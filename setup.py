"""Legacy setup shim: lets ``pip install -e . --no-use-pep517`` work on
environments without the ``wheel`` package (offline installs)."""

from setuptools import setup

setup()
